"""The recovery log facade: ordered history + named checkpoints + compaction.

The controller appends every committed write it broadcasts. A backend
that was disabled records the log index of its last applied write — its
*checkpoint* — and is resynchronised on re-enable by replaying everything
after that index. Unlike the original in-memory list, this log:

- delegates persistence to a pluggable :class:`LogStore` (a restarted
  controller on a :class:`FileLogStore` resumes with its pre-crash
  ``last_index``),
- names checkpoints through a :class:`CheckpointRegistry` instead of a
  bare integer, so several consumers (disabled backends, dumps,
  operator snapshots) can pin positions independently,
- compacts: entries at or below the oldest live checkpoint are
  truncated from the store, bounding memory and disk under heavy write
  traffic. Asking for entries older than the compaction floor raises
  :class:`LogCompactedError` — the caller must cold-start from a dump
  instead of replaying history that no longer exists.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.cluster.recovery.checkpoints import Checkpoint, CheckpointRegistry
from repro.cluster.recovery.logstore import LogEntry, LogStore, MemoryLogStore
from repro.errors import DriverError


class LogCompactedError(DriverError):
    """The requested replay range was truncated by compaction."""


class RecoveryLog:
    """Append-only log of write statements with monotonically growing indexes."""

    def __init__(
        self,
        store: Optional[LogStore] = None,
        checkpoints: Optional[CheckpointRegistry] = None,
        auto_compact_every: int = 0,
    ) -> None:
        self._store = store if store is not None else MemoryLogStore()
        # Explicit None check: an *empty* registry is falsy (len == 0) but
        # may still be the persisted one the caller wants used.
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointRegistry()
        #: Compact automatically every N appends (0 disables).
        self.auto_compact_every = auto_compact_every
        self._appends_since_compact = 0
        self.compactions = 0
        self.entries_compacted = 0
        self._lock = threading.Lock()
        #: Per-table sequence counters (the per-table ordering model:
        #: conflict-aware locking makes cluster-wide index order
        #: meaningful only per table). Seeded from the store's retained
        #: entries, so a restarted durable log continues each table's
        #: sequence where it left off; a table whose every entry was
        #: compacted restarts at 1 — its replayable history is empty, so
        #: no replay can observe the reset.
        self._table_seqs: Dict[str, int] = {}
        for entry in self._store.entries_after(self._store.truncated_through):
            for table, seq in entry.table_seqs.items():
                if seq > self._table_seqs.get(table, 0):
                    self._table_seqs[table] = seq

    @property
    def store(self) -> LogStore:
        return self._store

    # -- appends -----------------------------------------------------------------

    def append(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        transaction_id: Optional[str] = None,
        write_tables: Optional[Iterable[str]] = None,
    ) -> LogEntry:
        """Append one write; returns the entry with its assigned index.

        ``write_tables`` (the classifier's canonicalised table set) gets
        each table its next per-table sequence number. The caller must
        hold the table locks (or the exclusive lock) covering these
        tables across execute+append, which is what makes index order
        equal execution order *per table*."""
        with self._lock:
            entry = self._build_entry_locked(
                self._store.last_index + 1, sql, params, transaction_id, write_tables
            )
            self._store.append(entry)
            self._appends_since_compact += 1
            self._maybe_compact_locked()
            return entry

    def append_batch(
        self,
        specs: Iterable[Tuple[str, Optional[Dict[str, Any]], Optional[Iterable[str]]]],
    ) -> List[LogEntry]:
        """Append several writes as one batch: ``specs`` is an iterable of
        ``(sql, params, write_tables)``. Indexes and per-table sequences
        are assigned exactly as N single appends would, but the store
        persists them through :meth:`LogStore.append_many` — one
        flush+fsync for the whole batch on a durable store. Used for a
        COMMIT's buffered transaction writes and by group commit."""
        with self._lock:
            entries: List[LogEntry] = []
            next_index = self._store.last_index + 1
            for sql, params, write_tables in specs:
                entries.append(
                    self._build_entry_locked(next_index, sql, params, None, write_tables)
                )
                next_index += 1
            self._store.append_many(entries)
            self._appends_since_compact += len(entries)
            self._maybe_compact_locked()
            return entries

    def _build_entry_locked(
        self,
        index: int,
        sql: str,
        params: Optional[Dict[str, Any]],
        transaction_id: Optional[str],
        write_tables: Optional[Iterable[str]],
    ) -> LogEntry:
        tables = tuple(sorted(write_tables or ()))
        seqs: Dict[str, int] = {}
        for table in tables:
            seqs[table] = self._table_seqs.get(table, 0) + 1
            self._table_seqs[table] = seqs[table]
        return LogEntry(
            index=index,
            sql=sql,
            params=dict(params or {}),
            transaction_id=transaction_id,
            write_tables=tables,
            table_seqs=seqs,
        )

    def observe_replicated(self, entries: Iterable[LogEntry]) -> None:
        """Advance per-table sequence counters for entries appended to the
        store *from replication* rather than through :meth:`append`.

        An HA follower's store receives entries directly from REPLICATE
        frames, bypassing this facade — without this, a promoted follower
        would assign per-table sequences that collide with ones the old
        primary already handed out, corrupting replay dedup."""
        with self._lock:
            for entry in entries:
                for table, seq in entry.table_seqs.items():
                    if seq > self._table_seqs.get(table, 0):
                        self._table_seqs[table] = seq

    def _maybe_compact_locked(self) -> None:
        if self.auto_compact_every and self._appends_since_compact >= self.auto_compact_every:
            self._compact_locked()

    # -- reads -------------------------------------------------------------------

    @property
    def last_index(self) -> int:
        with self._lock:
            return self._store.last_index

    @property
    def first_index(self) -> int:
        """Index of the oldest entry still replayable."""
        with self._lock:
            return self._store.truncated_through + 1

    def entries_after(self, index: int) -> List[LogEntry]:
        """Entries with index strictly greater than ``index`` (for resync).

        Raises :class:`LogCompactedError` when compaction already dropped
        part of the requested range — the caller needs a dump-based
        cold start, a replay would silently skip writes."""
        if index < 0:
            index = 0
        with self._lock:
            if index < self._store.truncated_through:
                raise LogCompactedError(
                    f"log entries after {index} were compacted away "
                    f"(oldest retained index is {self._store.truncated_through + 1}); "
                    "cold-start from a database dump instead"
                )
            return self._store.entries_after(index)

    def __len__(self) -> int:
        return self.last_index

    # -- checkpoints ----------------------------------------------------------------

    def checkpoint(
        self, name: str, index: Optional[int] = None, overwrite: bool = False
    ) -> Checkpoint:
        """Pin ``index`` (default: the current head) under ``name``."""
        if index is None:
            index = self.last_index
        return self.checkpoints.create(name, index, overwrite=overwrite)

    def release_checkpoint(self, name: str) -> bool:
        return self.checkpoints.release(name)

    # -- compaction -------------------------------------------------------------------

    def compact(self) -> int:
        """Truncate entries no live checkpoint (nor any future replay
        from one) can need: everything at or below the oldest live
        checkpoint, or the whole retained history when nothing is
        pinned. Returns how many entries the store dropped."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        floor = self.checkpoints.oldest_live_index()
        if floor is None:
            floor = self._store.last_index
        dropped = self._store.truncate_through(floor)
        self._appends_since_compact = 0
        if dropped:
            self.compactions += 1
            self.entries_compacted += dropped
        return dropped

    # -- lifecycle / observability ------------------------------------------------------

    def flush(self) -> None:
        # Deliberately NOT under self._lock: the group-commit leader
        # flushes while other writers keep appending — holding the append
        # lock across a multi-millisecond fsync would serialise every
        # writer behind the flush, and no commit group could ever form.
        # The store synchronises its own handle against segment rolls.
        self._store.flush()

    def close(self) -> None:
        with self._lock:
            self._store.close()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            store_stats = self._store.stats()
        return {
            "last_index": store_stats["last_index"],
            "first_index": store_stats["truncated_through"] + 1,
            "retained_entries": store_stats["entry_count"],
            "tables_sequenced": len(self._table_seqs),
            "compactions": self.compactions,
            "entries_compacted": self.entries_compacted,
            "auto_compact_every": self.auto_compact_every,
            "store": store_stats,
            "checkpoints": self.checkpoints.stats(),
        }


class GroupCommit:
    """Amortises recovery-log fsyncs across concurrent writers.

    Appends stay immediate and ordered (the per-table sequence invariant
    needs assignment under the writer's lock scope); only *durability*
    is batched. A writer that appended index ``i`` calls
    :meth:`wait_durable(i)` after releasing its lock scope and before
    replying to the client. The first waiter becomes the group's leader:
    it (optionally) sleeps ``window_s`` to gather stragglers, then
    issues one ``flush()`` — a single fsync covering every entry
    appended so far, its own and every follower's. Writers that arrive
    while a flush is in flight wait and are covered by the *next*
    leader's fsync, so under load the fsync rate approaches one per
    group instead of one per statement, and no reply ever returns before
    its entry is durable.

    The coordinator is only installed when the log is durable
    (``log_dir`` + ``log_fsync``) and group commit is enabled; the store
    is then opened with ``fsync_on_append=False`` so the per-append
    fsync does not pay twice.
    """

    def __init__(self, log: RecoveryLog, window_s: float = 0.0) -> None:
        self._log = log
        self._window_s = max(0.0, window_s)
        self._cond = threading.Condition()
        #: Highest index known durable (covered by a finished fsync).
        self._flushed_through = 0
        self._flushing = False
        #: Observability: fsync groups led, and appends whose durability
        #: rode on some group's fsync.
        self.groups = 0
        self.synced_appends = 0

    def wait_durable(self, index: int) -> None:
        """Block until log entry ``index`` is fsynced, batching with
        concurrent waiters. Must be called without holding any scheduler
        lock the append path needs."""
        with self._cond:
            self.synced_appends += 1
            while index > self._flushed_through and self._flushing:
                self._cond.wait(timeout=5.0)
            if index <= self._flushed_through:
                return
            self._flushing = True
        # Leader: everything appended before the flush() below is covered
        # by its single fsync (entries are written to the OS on append;
        # closed segments were sealed at roll time).
        head = index
        flushed = False
        try:
            if self._window_s > 0:
                time.sleep(self._window_s)
            head = max(head, self._log.last_index)
            self._log.flush()
            flushed = True
        finally:
            with self._cond:
                self._flushing = False
                if flushed:
                    # Only a completed fsync moves the watermark: a failed
                    # flush must leave followers retrying as new leaders
                    # (and surfacing the error), not believing their entry
                    # durable.
                    self._flushed_through = max(self._flushed_through, head)
                    self.groups += 1
                self._cond.notify_all()

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "window_s": self._window_s,
                "groups": self.groups,
                "synced_appends": self.synced_appends,
                "flushed_through": self._flushed_through,
            }
