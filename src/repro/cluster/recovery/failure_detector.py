"""Heartbeat-driven backend failure detection and automatic resync.

The write path already demotes a backend that fails a broadcast, but an
*idle* dead replica — crashed between writes, or partitioned away — used
to sit ENABLED and silently eat read traffic until something noticed.
The :class:`FailureDetector` pings every backend on each check:

- an ENABLED backend that misses ``max_misses`` consecutive heartbeats
  is disabled around a consistent checkpoint (through the scheduler, so
  the checkpoint is atomic with the write path and pinned by name
  against log compaction),
- a backend the detector disabled — or one the write path marked FAILED
  — that answers a ping again is automatically resynchronised and
  re-enabled; when the log was compacted past its checkpoint the resync
  falls back to a dump-based cold start from a healthy sibling,
- backends an administrator disabled are left alone: operator intent
  outranks liveness.

Checks are explicit (``check()``) so experiments drive them from a
:class:`~repro.core.clock.SimulatedClock`; the controller can also run
them from a background thread at ``heartbeat_interval``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set

from repro.core.clock import Clock, wall_clock
from repro.errors import DriverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.backend import Backend
    from repro.cluster.recovery.dumper import DatabaseDumper
    from repro.cluster.scheduler import RequestScheduler


class FailureDetector:
    """Polls backend liveness; auto-disables and auto-resyncs through the
    scheduler so every state flip stays atomic with the write path."""

    def __init__(
        self,
        scheduler: "RequestScheduler",
        clock: Clock = wall_clock,
        max_misses: int = 2,
        auto_resync: bool = True,
        dumper_factory: Optional[Callable[[], "DatabaseDumper"]] = None,
    ) -> None:
        if max_misses < 1:
            raise ValueError("max_misses must be >= 1")
        self._scheduler = scheduler
        self._clock = clock
        self.max_misses = max_misses
        self.auto_resync = auto_resync
        self._dumper_factory = dumper_factory
        self._misses: Dict[str, int] = {}
        #: Backends *we* disabled — the only DISABLED ones we may revive.
        self._auto_disabled: Set[str] = set()
        self._lock = threading.Lock()
        self.checks = 0
        self.failures_detected = 0
        self.backends_disabled = 0
        self.backends_resynced = 0
        self.last_check_at: Optional[float] = None

    # -- one detection round ------------------------------------------------------

    def check(self) -> Dict[str, Any]:
        """Ping every backend once; returns a report of what changed."""
        from repro.cluster.backend import BackendState

        now = self._clock()
        disabled = []
        resynced = []
        pending = []
        for backend in self._scheduler.backends():
            if backend.state == BackendState.RECOVERING:
                # Mid-resync under the scheduler's write lock; pinging
                # would block this round on the backend's own lock.
                continue
            if backend.state == BackendState.DISABLED and not self._is_auto_disabled(
                backend.name
            ):
                # Admin-disabled: we will never act on the result, and the
                # probe would keep reopening the connection the disable
                # deliberately closed (or pay a connect timeout each round
                # against a host down for maintenance).
                continue
            alive = backend.ping()
            if alive:
                backend.last_heartbeat_at = now
            if backend.state == BackendState.ENABLED:
                if alive:
                    with self._lock:
                        self._misses.pop(backend.name, None)
                    continue
                with self._lock:
                    misses = self._misses.get(backend.name, 0) + 1
                    self._misses[backend.name] = misses
                if misses < self.max_misses:
                    pending.append(backend.name)
                    continue
                self._scheduler.checkpoint_and_disable(backend)
                with self._lock:
                    self._auto_disabled.add(backend.name)
                    self._misses.pop(backend.name, None)
                self.failures_detected += 1
                self.backends_disabled += 1
                disabled.append(backend.name)
            elif backend.state == BackendState.FAILED or (
                backend.state == BackendState.DISABLED and self._is_auto_disabled(backend.name)
            ):
                if not alive or not self.auto_resync:
                    continue
                dumper = self._dumper_factory() if self._dumper_factory else None
                try:
                    self._scheduler.resync_and_enable(backend, dumper=dumper)
                except DriverError:
                    # Open transaction, no healthy dump source, replay
                    # failure... leave it for the next round.
                    pending.append(backend.name)
                    continue
                with self._lock:
                    self._auto_disabled.discard(backend.name)
                self.backends_resynced += 1
                resynced.append(backend.name)
        self.checks += 1
        self.last_check_at = now
        return {
            "at": now,
            "disabled": disabled,
            "resynced": resynced,
            "pending": pending,
        }

    def _is_auto_disabled(self, name: str) -> bool:
        with self._lock:
            return name in self._auto_disabled

    def forget(self, name: str) -> None:
        """Drop detector state for a backend (e.g. after an admin enable)."""
        with self._lock:
            self._auto_disabled.discard(name)
            self._misses.pop(name, None)

    # -- observability --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "checks": self.checks,
                "failures_detected": self.failures_detected,
                "backends_disabled": self.backends_disabled,
                "backends_resynced": self.backends_resynced,
                "last_check_at": self.last_check_at,
                "max_misses": self.max_misses,
                "auto_resync": self.auto_resync,
                "auto_disabled": sorted(self._auto_disabled),
                "missing_heartbeats": dict(self._misses),
            }
