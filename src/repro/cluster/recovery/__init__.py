"""Durable recovery subsystem for the cluster middleware.

The paper keeps replicas consistent by disabling/enabling backends
"around a consistent checkpoint" and replaying a recovery log. This
package is the production-shaped version of that mechanism:

- :mod:`repro.cluster.recovery.logstore` — the pluggable ``LogStore``
  interface with an in-memory store and a segmented, file-backed JSONL
  store that survives controller restarts (crash recovery on open,
  optional fsync-on-append),
- :mod:`repro.cluster.recovery.checkpoints` — named checkpoints
  (``CheckpointRegistry``) replacing the bare integer checkpoint; live
  checkpoints pin log entries against compaction,
- :mod:`repro.cluster.recovery.log` — the :class:`RecoveryLog` facade
  combining a store and a registry, with compaction that truncates
  segments older than the oldest live checkpoint,
- :mod:`repro.cluster.recovery.dumper` — :class:`DatabaseDumper`, which
  snapshots a healthy backend through plain SQL (via the sqlengine's
  ``information_schema``) so a brand-new backend can cold-start from
  dump + tail replay instead of a full-history replay,
- :mod:`repro.cluster.recovery.failure_detector` — a heartbeat-driven
  detector that auto-disables dead backends at a checkpoint and
  auto-resyncs them when they come back,
- :mod:`repro.cluster.recovery.replication` — controller HA:
  :class:`ReplicatedLogStore` wraps any store and replicates the log and
  checkpoint registry to controller peers with a majority-ack rule and
  an epoch scheme that fences deposed primaries.

See docs/recovery.md and docs/ha.md for the full walkthroughs.
"""

from repro.cluster.recovery.logstore import (
    FileLogStore,
    LogEntry,
    LogStore,
    MemoryLogStore,
)
from repro.cluster.recovery.checkpoints import Checkpoint, CheckpointRegistry
from repro.cluster.recovery.log import GroupCommit, LogCompactedError, RecoveryLog
from repro.cluster.recovery.replication import ReplicatedLogStore, ReplicationError
from repro.cluster.recovery.dumper import (
    ColumnDump,
    DatabaseDump,
    DatabaseDumper,
    TableDump,
)
from repro.cluster.recovery.failure_detector import FailureDetector

__all__ = [
    "LogEntry",
    "LogStore",
    "MemoryLogStore",
    "FileLogStore",
    "Checkpoint",
    "CheckpointRegistry",
    "RecoveryLog",
    "GroupCommit",
    "LogCompactedError",
    "ReplicatedLogStore",
    "ReplicationError",
    "ColumnDump",
    "TableDump",
    "DatabaseDump",
    "DatabaseDumper",
    "FailureDetector",
]
