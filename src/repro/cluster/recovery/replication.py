"""Controller HA: recovery-log replication across controller peers.

The paper's middleware replicates the *backends*, but each controller's
recovery log is local — if the controller dies, committed writes that
only its log knew about are stranded even though the physical databases
applied them. :class:`ReplicatedLogStore` closes that gap: it wraps any
:class:`~repro.cluster.recovery.logstore.LogStore` and, when the
group-commit leader flushes, pushes the fsync group's entries to every
follower peer over the cluster wire protocol (REPLICATE/REPLICATE_OK
frames) and requires a **majority of the controller cluster** to hold
them before ``wait_durable`` resolves. One replication round covers the
whole fsync group — the group-commit batching from PR 7 amortises the
network round-trip exactly like it amortises the fsync.

Total order is the recovery log's own: entries arrive at the primary
already indexed (the :class:`RecoveryLog` facade serialises appends), so
replication is a log-shipping protocol, not a consensus one. What keeps
it safe across failover is the **epoch rule**:

- every node tracks an integer ``epoch``; frames carry the sender's
  epoch;
- a follower refuses any REPLICATE whose epoch is *older* than its own
  (reply: ``stale_epoch`` carrying the refuser's epoch), and adopts any
  *newer* epoch (demoting itself if it thought it was primary);
- promotion bumps the epoch past every value the promoting node has
  seen, so a deposed primary that comes back cannot reach a majority —
  every up-to-date peer refuses its stale epoch, its quorum fails, and
  it demotes itself on the spot.

With ``2f+1`` controllers the cluster tolerates ``f`` failures. The
degenerate 2-node cluster has majority 2, so *either* node's death
halts writes — deliberate: a 2-node cluster that kept accepting writes
on one node could diverge under partition. Use 3 controllers for HA.

See docs/ha.md for the protocol walk-through.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import DriverError, TransportError

from repro.cluster.wire import (
    ClusterMessageType,
    ERROR_STALE_EPOCH,
    make_error,
    make_replicate,
    make_replicate_ok,
)
from repro.cluster.recovery.logstore import LogEntry, LogStore, atomic_write_json

ROLE_PRIMARY = "primary"
ROLE_FOLLOWER = "follower"

#: A transport failure that took at least this long was a *timeout*
#: (connect or ack), not an instant refusal — only those earn reconnect
#: backoff, because only those would otherwise add their full timeout to
#: every replication round for as long as the peer stays dark.
_SLOW_FAILURE_S = 0.05
_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 5.0


class ReplicationError(DriverError):
    """A replication round could not reach a majority, or this node was
    deposed mid-round. Raised out of ``flush()`` — and therefore out of
    ``GroupCommit.wait_durable`` — so a write whose durability could not
    be confirmed fails at the client instead of lying about it. The
    statement may still have been applied by the backends (durability
    *unknown*, exactly like a crashed commit on a single-node database);
    replay dedup via per-table sequences keeps a retry safe."""


class _PeerLink:
    """One persistent replication channel to a follower peer.

    The channel is lazily (re)connected; any transport failure closes it
    so the next round starts fresh. ``acked_index`` is the highest log
    index the peer confirmed holding — the cursor that keeps steady-state
    rounds incremental. ``blocked`` is a fault-injection seam used by
    ``tests/chaos.py`` to partition exactly this link (the in-memory
    network's address-pair partitions cannot target outbound channels,
    whose source addresses are anonymous)."""

    def __init__(
        self,
        address: str,
        network: Any,
        connect_timeout_s: float,
        ack_timeout_s: float,
    ) -> None:
        self.address = address
        self._network = network
        self._connect_timeout_s = connect_timeout_s
        self._ack_timeout_s = ack_timeout_s
        self._channel: Optional[Any] = None
        self.acked_index = 0
        self.reachable = False
        self.blocked = False
        #: The peer answered but cannot hold the shipped entries (its log
        #: head sits below the primary's compaction floor and it did not
        #: take the snapshot): it needs a reseed and is never counted as
        #: an ack until it catches up.
        self.needs_reseed = False
        #: Reconnect backoff after slow failures: until ``retry_at`` the
        #: peer is skipped (when quorum allows), so a dead peer's connect
        #: timeout is paid once per backoff window, not once per flush.
        self.fail_streak = 0
        self.retry_at = 0.0

    def in_backoff(self) -> bool:
        return time.monotonic() < self.retry_at

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and wait for its reply; raises TransportError."""
        if self.blocked:
            raise TransportError(
                f"replication link to {self.address} partitioned (chaos)"
            )
        started = time.monotonic()
        try:
            channel = self._channel
            if channel is None:
                channel = self._network.connect(
                    self.address, timeout=self._connect_timeout_s
                )
                self._channel = channel
            channel.send(message)
            reply = channel.recv(timeout=self._ack_timeout_s)
        except TransportError:
            self.close()
            self._note_failure(time.monotonic() - started)
            raise
        if reply is None:
            self.close()
            self._note_failure(time.monotonic() - started)
            raise TransportError(f"replication peer {self.address} closed the channel")
        self.fail_streak = 0
        self.retry_at = 0.0
        return reply

    def _note_failure(self, elapsed: float) -> None:
        if elapsed < _SLOW_FAILURE_S:
            return  # instant refusals are cheap to retry next round
        self.fail_streak += 1
        delay = min(_BACKOFF_BASE_S * (2 ** (self.fail_streak - 1)), _BACKOFF_CAP_S)
        self.retry_at = time.monotonic() + delay

    def close(self) -> None:
        channel, self._channel = self._channel, None
        if channel is not None:
            try:
                channel.close()
            except TransportError:
                pass


class ReplicatedLogStore(LogStore):
    """Wrap an inner :class:`LogStore` with majority-ack peer replication.

    On the **primary**, ``flush()`` first makes the fsync group durable
    locally (``inner.flush()``), then runs one replication round: every
    peer missing entries gets them in a single REPLICATE frame, and the
    round succeeds only when acks + self reach ``required_acks`` (strict
    cluster majority, counting this node). Failure raises
    :class:`ReplicationError` up through ``wait_durable``.

    On a **follower**, :meth:`apply_replicate` appends the shipped
    entries idempotently (duplicates skipped, gaps reported for
    backfill), mirrors the primary's compaction floor, and flushes the
    inner store *before* acking — a majority ack therefore means a
    majority of controllers hold the entries at their own local
    durability level.
    """

    def __init__(
        self,
        inner: LogStore,
        network: Any,
        node_id: str,
        self_address: str,
        peer_addresses: List[str],
        initial_primary: Optional[bool] = None,
        ack_timeout_s: float = 5.0,
        connect_timeout_s: float = 2.0,
        meta_path: Optional[str] = None,
    ) -> None:
        self.inner = inner
        self.node_id = node_id
        self.self_address = self_address
        self._meta_path = meta_path
        self._peers: Dict[str, _PeerLink] = {
            address: _PeerLink(address, network, connect_timeout_s, ack_timeout_s)
            for address in peer_addresses
        }
        self.cluster_size = 1 + len(self._peers)
        #: Strict majority of the controller cluster, counting this node.
        self.required_acks = self.cluster_size // 2 + 1
        self.epoch = 1
        #: Where the cluster thinks the primary is; followers hand this
        #: to bounced drivers so failover goes straight to the right node.
        self.primary_hint: Optional[str] = None
        restored = self._load_meta()
        if restored is not None:
            # This node was deposed or promoted in a previous life; its
            # pre-crash role is unknowable, so restart as a follower at
            # the persisted epoch and let election sort it out.
            self.epoch = restored
            self.role = ROLE_FOLLOWER
        elif initial_primary is not None:
            self.role = ROLE_PRIMARY if initial_primary else ROLE_FOLLOWER
        else:
            # Deterministic initial primary with zero configuration: the
            # lexicographically smallest controller address. Every peer
            # computes the same answer from the same peer list.
            all_addresses = sorted([self_address, *peer_addresses])
            self.role = ROLE_PRIMARY if all_addresses[0] == self_address else ROLE_FOLLOWER
            if self.role == ROLE_FOLLOWER:
                self.primary_hint = all_addresses[0]
        #: Serialises replication rounds (one group-commit leader at a
        #: time calls flush, but promote()/announce() may race it).
        self._round_lock = threading.Lock()
        #: Serialises REPLICATE application (two primaries racing a
        #: failover may both hold an open replication channel here).
        self._apply_lock = threading.Lock()
        #: Guards epoch/role/hint transitions against concurrent
        #: REPLICATE application and election probes. Deliberately NOT
        #: held across log appends or fsyncs: status() answers election
        #: probes under this lock, and a probe stuck behind a flush would
        #: blow past ha_probe_timeout_s and skew responder sets.
        self._state_lock = threading.Lock()
        self._checkpoint_snapshot: Optional[Callable[[], List[Dict[str, Any]]]] = None
        self._replicated_through = 0
        self._announced_floor = 0
        self.rounds = 0
        self.entries_shipped = 0
        self.snapshot_installs = 0
        self.quorum_failures = 0
        self.promotions = 0
        self.depositions = 0
        self.epoch_adoptions = 0

    # -- epoch persistence --------------------------------------------------------

    def _load_meta(self) -> Optional[int]:
        if self._meta_path is None:
            return None
        import json
        import os

        if not os.path.exists(self._meta_path):
            return None
        try:
            with open(self._meta_path, "r", encoding="utf-8") as handle:
                return int(json.load(handle).get("epoch", 1))
        except (ValueError, OSError):
            return None

    def _persist_meta_locked(self) -> None:
        if self._meta_path is not None:
            atomic_write_json(self._meta_path, {"epoch": self.epoch})

    # -- wiring --------------------------------------------------------------------

    def set_checkpoint_snapshot_provider(
        self, provider: Callable[[], List[Dict[str, Any]]]
    ) -> None:
        """Install the callable that captures the live checkpoint registry
        for shipping alongside log entries (set after the registry exists;
        the store is constructed first)."""
        self._checkpoint_snapshot = provider

    @property
    def is_primary(self) -> bool:
        return self.role == ROLE_PRIMARY

    def peer_addresses(self) -> List[str]:
        return list(self._peers)

    def peer_link(self, address: str) -> _PeerLink:
        return self._peers[address]

    # -- LogStore delegation -------------------------------------------------------

    def append(self, entry: LogEntry) -> None:
        self.inner.append(entry)

    def append_many(self, entries: List[LogEntry]) -> None:
        self.inner.append_many(entries)

    def entries_after(self, index: int) -> List[LogEntry]:
        return self.inner.entries_after(index)

    @property
    def last_index(self) -> int:
        return self.inner.last_index

    @property
    def truncated_through(self) -> int:
        return self.inner.truncated_through

    @property
    def entry_count(self) -> int:
        return self.inner.entry_count

    def truncate_through(self, index: int) -> int:
        return self.inner.truncate_through(index)

    def reset_to_floor(self, index: int) -> None:
        self.inner.reset_to_floor(index)

    def close(self) -> None:
        for peer in self._peers.values():
            peer.close()
        self.inner.close()

    def __getattr__(self, name: str) -> Any:
        # Store-specific observables (FileLogStore.fsyncs, .directory,
        # .recovered_partial_lines, ...) stay reachable through the wrap.
        return getattr(self.inner, name)

    # -- primary side --------------------------------------------------------------

    def flush(self) -> None:
        """Local durability first, then one majority-ack round for
        everything the fsync group made durable. Called once per
        group-commit flush — N batched writes cost one network round."""
        self.inner.flush()
        if self._peers and self.is_primary:
            self.replicate()

    def replicate(self, force: bool = False, require_quorum: bool = True) -> bool:
        """Run one replication round; returns True on majority.

        Skips the network entirely when nothing new happened since the
        last majority-acked round (``force`` overrides, used by
        :meth:`announce` after promotion). Raises
        :class:`ReplicationError` when the round cannot reach a majority
        (``require_quorum=False`` downgrades that to a False return, for
        best-effort announcements)."""
        with self._round_lock:
            with self._state_lock:
                if self.role != ROLE_PRIMARY:
                    raise ReplicationError(
                        f"{self.node_id} is not the primary (epoch {self.epoch})"
                    )
                epoch = self.epoch
            head = self.inner.last_index
            floor = self.inner.truncated_through
            if not force and head <= self._replicated_through and floor <= self._announced_floor:
                return True
            checkpoints = (
                self._checkpoint_snapshot() if self._checkpoint_snapshot else None
            )
            outcomes = self._ship_round(epoch, floor, checkpoints)
            acks = 1  # this node holds its own log
            stale_epoch_seen = 0
            for peer in self._peers.values():
                outcome, stale_epoch, shipped = outcomes[peer.address]
                self.entries_shipped += shipped
                if outcome == "ack":
                    peer.reachable = True
                    peer.needs_reseed = False
                    acks += 1
                elif outcome == "behind":
                    # Reachable, but its log head sits below our compaction
                    # floor and the backfill retry could not fill it: the
                    # peer does NOT hold the entries, so it must not count
                    # toward the majority — otherwise an "acked" write
                    # could be durable on fewer nodes than promised.
                    peer.reachable = True
                    peer.needs_reseed = True
                elif outcome == "stale":
                    peer.reachable = True
                    stale_epoch_seen = max(stale_epoch_seen, stale_epoch)
                else:
                    peer.reachable = False
            if stale_epoch_seen:
                # A peer is ahead of us: we were deposed while we slept.
                with self._state_lock:
                    if stale_epoch_seen > self.epoch:
                        self.epoch = stale_epoch_seen
                        self.epoch_adoptions += 1
                    if self.role == ROLE_PRIMARY:
                        self.role = ROLE_FOLLOWER
                        self.depositions += 1
                    self._persist_meta_locked()
                raise ReplicationError(
                    f"{self.node_id} was deposed: a peer is at epoch "
                    f"{stale_epoch_seen}, refusing our stale appends"
                )
            if acks >= self.required_acks:
                self.rounds += 1
                self._replicated_through = head
                self._announced_floor = floor
                return True
            self.quorum_failures += 1
            if require_quorum:
                raise ReplicationError(
                    f"replication quorum failed: {acks}/{self.required_acks} "
                    f"acks in a cluster of {self.cluster_size}"
                )
            return False

    def _ship_round(
        self,
        epoch: int,
        floor: int,
        checkpoints: Optional[List[Dict[str, Any]]],
    ) -> Dict[str, Tuple[str, int, int]]:
        """Contact every peer for one round; returns per-address
        ``(outcome, stale_epoch, entries_shipped)``.

        Peers in reconnect backoff are skipped for free (counted "down")
        — unless the round cannot reach quorum without them, in which
        case they are tried anyway: backoff only ever trades latency,
        never availability."""
        results: Dict[str, Tuple[str, int, int]] = {}
        ready = [p for p in self._peers.values() if not p.in_backoff()]
        deferred = [p for p in self._peers.values() if p.in_backoff()]
        for peer in deferred:
            results[peer.address] = ("down", 0, 0)
        self._contact_peers(ready, epoch, floor, checkpoints, results)
        acks = sum(1 for outcome, _, _ in results.values() if outcome == "ack")
        if deferred and 1 + acks < self.required_acks:
            self._contact_peers(deferred, epoch, floor, checkpoints, results)
        return results

    def _contact_peers(
        self,
        peers: List[_PeerLink],
        epoch: int,
        floor: int,
        checkpoints: Optional[List[Dict[str, Any]]],
        results: Dict[str, Tuple[str, int, int]],
    ) -> None:
        """One REPLICATE exchange per peer, concurrently: the round costs
        the *slowest* peer's latency, not the sum — one dead peer's
        connect timeout no longer serialises in front of every live
        peer's ack on every group-commit flush."""
        if not peers:
            return

        def ship(target: _PeerLink) -> None:
            results[target.address] = self._replicate_to_peer(
                target, epoch, floor, checkpoints
            )

        threads = [
            threading.Thread(target=ship, args=(peer,), daemon=True)
            for peer in peers[1:]
        ]
        for thread in threads:
            thread.start()
        ship(peers[0])
        for thread in threads:
            thread.join()

    def _replicate_to_peer(
        self,
        peer: _PeerLink,
        epoch: int,
        floor: int,
        checkpoints: Optional[List[Dict[str, Any]]],
    ) -> Tuple[str, int, int]:
        """Ship the peer everything past its ack cursor; returns
        ``(outcome, stale_epoch, entries_shipped)`` where outcome is
        "ack", "behind" (reachable but unable to hold the entries — needs
        a reseed, never counted toward quorum), "stale" (peer refused our
        epoch) or "down"."""
        shipped = 0
        for attempt in range(2):  # one retry to backfill a reported gap
            base = max(peer.acked_index, floor)
            entries = [e.to_wire() for e in self.inner.entries_after(base)]
            frame = make_replicate(
                origin=self.node_id,
                origin_address=self.self_address,
                epoch=epoch,
                entries=entries,
                truncated_through=floor,
                checkpoints=checkpoints,
            )
            try:
                reply = peer.request(frame)
            except TransportError:
                return "down", 0, shipped
            kind = reply.get("type")
            if kind == ClusterMessageType.REPLICATE_OK:
                shipped += len(entries)
                peer.acked_index = int(reply.get("last_index", 0))
                if not reply.get("gap"):
                    return "ack", 0, shipped
                if attempt == 0:
                    # The peer is further behind than our cursor thought
                    # (e.g. it restarted empty); resend from its real head.
                    continue
                # Still gapped after the backfill retry: the peer's head
                # is below our compaction floor and the retained log
                # cannot fill it (it refused or never got the snapshot).
                return "behind", 0, shipped
            if kind == ClusterMessageType.ERROR and reply.get("code") == ERROR_STALE_EPOCH:
                return "stale", int(reply.get("epoch", epoch + 1)), shipped
            return "down", 0, shipped
        return "down", 0, shipped  # pragma: no cover

    # -- follower side -------------------------------------------------------------

    def apply_replicate(self, frame: Dict[str, Any]) -> "tuple[Dict[str, Any], List[LogEntry]]":
        """Apply one REPLICATE frame; returns ``(reply, applied_entries)``.

        ``applied_entries`` is the suffix actually appended here (the
        controller advances its per-table sequence counters and checkpoint
        registry from it). The inner store is flushed before the ack so a
        majority ack implies majority-local durability. Epoch/role
        transitions happen under ``_state_lock``; the append+fsync work
        runs outside it (serialised by ``_apply_lock``) so election
        probes answered by :meth:`status` never queue behind a flush."""
        with self._apply_lock:
            with self._state_lock:
                frame_epoch = int(frame.get("epoch", 0))
                if frame_epoch < self.epoch or (
                    frame_epoch == self.epoch and self.role == ROLE_PRIMARY
                ):
                    # Stale primary (or same-epoch split brain): refuse, and
                    # tell it our epoch so it demotes itself.
                    reply = make_error(
                        ERROR_STALE_EPOCH,
                        f"{self.node_id} is at epoch {self.epoch}, "
                        f"refusing epoch {frame_epoch} appends",
                    )
                    reply["epoch"] = self.epoch
                    return reply, []
                if frame_epoch > self.epoch:
                    self.epoch = frame_epoch
                    self.epoch_adoptions += 1
                    if self.role == ROLE_PRIMARY:
                        self.role = ROLE_FOLLOWER
                        self.depositions += 1
                    self._persist_meta_locked()
                self.primary_hint = frame.get("origin_address") or self.primary_hint
            entries = [LogEntry.from_wire(e) for e in frame.get("entries") or []]
            floor = int(frame.get("truncated_through", 0))
            local_last = self.inner.last_index
            gap = False
            applied: List[LogEntry] = []
            if entries:
                if entries[0].index > local_last + 1:
                    if (
                        frame.get("checkpoints") is not None
                        and local_last <= floor
                        and entries[0].index == floor + 1
                    ):
                        # Snapshot install: our whole log sits below the
                        # primary's compaction floor, and this frame carries
                        # everything the primary itself retains — the
                        # checkpoint-registry snapshot plus every entry past
                        # the floor. Adopt the floor (our stale prefix is
                        # superseded by the snapshot, the same blind spot
                        # compaction already accepts) and splice the fresh
                        # suffix, so a restarted-empty follower catches up
                        # instead of gapping forever.
                        self.inner.reset_to_floor(floor)
                        for entry in entries:
                            self.inner.append(entry)
                            applied.append(entry)
                        self.snapshot_installs += 1
                    else:
                        gap = True
                else:
                    divergence = self._check_overlap(entries, local_last)
                    if divergence is not None:
                        return divergence, []
                    for entry in entries:
                        if entry.index <= local_last:
                            continue
                        self.inner.append(entry)
                        applied.append(entry)
            if floor > self.inner.truncated_through:
                self.inner.truncate_through(floor)
            self.inner.flush()
            with self._state_lock:
                reply = make_replicate_ok(
                    self.node_id, self.epoch, self.inner.last_index, gap=gap
                )
            return reply, applied

    def _check_overlap(
        self, entries: List[LogEntry], local_last: int
    ) -> Optional[Dict[str, Any]]:
        """Compare the overlapping prefix against our retained log; a
        mismatch means histories diverged (a deposed primary kept writes
        no majority saw) and this node must not silently splice them."""
        overlap = [e for e in entries if e.index <= local_last]
        if not overlap:
            return None
        local = {
            e.index: e for e in self.inner.entries_after(overlap[0].index - 1)
        }
        for incoming in overlap:
            mine = local.get(incoming.index)
            if mine is None:
                continue  # below our compaction floor; nothing to compare
            if (mine.sql, mine.table_seqs) != (incoming.sql, incoming.table_seqs):
                return make_error(
                    "diverged_log",
                    f"{self.node_id} log diverges at index {incoming.index}; "
                    "this node needs a reseed before rejoining",
                )
        return None

    # -- promotion / election -----------------------------------------------------

    def promote(self, floor_epoch: int = 0) -> int:
        """Take over as primary at a fresh epoch; returns the new epoch.

        The epoch bump past everything this node has seen is what fences
        the old primary: its next round meets ``stale_epoch`` refusals at
        every up-to-date peer and cannot reach a majority.
        ``floor_epoch`` is the highest epoch observed elsewhere (election
        probe responses) — the bump goes past it as well as our own, so a
        candidate whose local epoch lagged (missed announce frames)
        cannot promote *behind* an epoch already persisted in the
        cluster."""
        with self._state_lock:
            if self.role != ROLE_PRIMARY:
                self.role = ROLE_PRIMARY
                self.promotions += 1
            self.epoch = max(self.epoch, floor_epoch) + 1
            self.primary_hint = None
            self._persist_meta_locked()
            return self.epoch

    def announce(self) -> bool:
        """Best-effort round pushing the new epoch (and any entries the
        peers miss) out after promotion; never raises on missing quorum."""
        try:
            return self.replicate(force=True, require_quorum=False)
        except ReplicationError:
            return False

    def set_primary_hint(self, address: Optional[str]) -> None:
        with self._state_lock:
            self.primary_hint = address

    def status(self) -> Dict[str, Any]:
        """Election-probe payload (HA_STATUS_OK body, sans type)."""
        with self._state_lock:
            return {
                "node_id": self.node_id,
                "address": self.self_address,
                "epoch": self.epoch,
                "role": self.role,
                "last_index": self.inner.last_index,
            }

    # -- stats ---------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        base = self.inner.stats()
        base["replication"] = self.ha_stats()
        return base

    def ha_stats(self) -> Dict[str, Any]:
        with self._state_lock:
            return {
                "node_id": self.node_id,
                "role": self.role,
                "epoch": self.epoch,
                "cluster_size": self.cluster_size,
                "required_acks": self.required_acks,
                "primary_hint": self.primary_hint,
                "replicated_through": self._replicated_through,
                "rounds": self.rounds,
                "entries_shipped": self.entries_shipped,
                "snapshot_installs": self.snapshot_installs,
                "quorum_failures": self.quorum_failures,
                "promotions": self.promotions,
                "depositions": self.depositions,
                "epoch_adoptions": self.epoch_adoptions,
                "peers": {
                    address: {
                        "acked_index": peer.acked_index,
                        "reachable": peer.reachable,
                        "blocked": peer.blocked,
                        "needs_reseed": peer.needs_reseed,
                    }
                    for address, peer in self._peers.items()
                },
            }
