"""Cluster (controller) wire protocol.

Sequoia "uses its own wire protocol between drivers and controllers.
Compatibility checking is done at connection time to ensure that protocol
versions will work together. Drivers are backward compatible with older
controllers." (paper Section 5.3.1)

We encode that as: a driver speaking version ``v`` can talk to any
controller with version ``>= v`` (the controller accepts any client
version up to its own); a driver *newer* than the controller downgrades
itself to the controller's version during the handshake, which is what
"backward compatible" means operationally.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import DriverError

#: Protocol version spoken by the current controller/driver generation.
CLUSTER_PROTOCOL_VERSION = 2


class ClusterWireError(DriverError):
    """Malformed or unexpected cluster protocol message."""


class ClusterMessageType:
    CONNECT = "seq_connect"
    CONNECT_OK = "seq_connect_ok"
    EXECUTE = "seq_execute"
    RESULT = "seq_result"
    ERROR = "seq_error"
    CLOSE = "seq_close"
    PING = "seq_ping"
    PONG = "seq_pong"
    # Controller-to-controller group communication.
    GROUP = "seq_group"


def make_connect(
    virtual_database: str,
    user: Optional[str],
    password: Optional[str],
    protocol_version: int,
    options: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.CONNECT,
        "virtual_database": virtual_database,
        "user": user,
        "password": password,
        "protocol_version": protocol_version,
        "options": options or {},
    }


def make_connect_ok(controller_id: str, protocol_version: int, session_id: str) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.CONNECT_OK,
        "controller_id": controller_id,
        "protocol_version": protocol_version,
        "session_id": session_id,
    }


def make_execute(sql: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    return {"type": ClusterMessageType.EXECUTE, "sql": sql, "params": params or {}}


def make_result(columns: List[str], rows: List[Any], rowcount: int) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.RESULT,
        "columns": columns,
        "rows": [list(row) for row in rows],
        "rowcount": rowcount,
    }


def make_error(code: str, message: str) -> Dict[str, Any]:
    return {"type": ClusterMessageType.ERROR, "code": code, "message": message}


def make_group(operation: str, payload: Dict[str, Any], origin: str) -> Dict[str, Any]:
    """Controller group-communication envelope."""
    return {
        "type": ClusterMessageType.GROUP,
        "operation": operation,
        "payload": payload,
        "origin": origin,
    }
