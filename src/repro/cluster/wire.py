"""Cluster (controller) wire protocol.

Sequoia "uses its own wire protocol between drivers and controllers.
Compatibility checking is done at connection time to ensure that protocol
versions will work together. Drivers are backward compatible with older
controllers." (paper Section 5.3.1)

We encode that as: a driver speaking version ``v`` can talk to any
controller with version ``>= v`` (the controller accepts any client
version up to its own); a driver *newer* than the controller downgrades
itself to the controller's version during the handshake, which is what
"backward compatible" means operationally.

Version history:

- **v1/v2** — one physical channel per logical session; EXECUTE/RESULT
  alternate strictly, so messages need no correlation fields.
- **v3** — session multiplexing: one physical channel carries many
  logical sessions. EXECUTE/RESULT/ERROR gain ``session_id`` (which
  logical session) and ``request_id`` (which in-flight statement of that
  session), so statements can be pipelined — fire N executes, match the
  responses by ``(session_id, request_id)`` — and SESSION_OPEN /
  SESSION_OPEN_OK / SESSION_CLOSE manage logical sessions on an
  already-handshaked channel. Multiplexing is negotiated: the CONNECT
  carries ``multiplex=True``, and the controller grants it with
  ``multiplexing=True`` in the CONNECT_OK only when it is configured on
  and the negotiated version is >= 3; without the grant the channel
  stays a dedicated v2-style session. See docs/wire.md.
- **v3 tracing extension** — per-statement tracing rides the same
  negotiation style: CONNECT may carry ``trace=True``, the controller
  grants with ``tracing=True`` in the CONNECT_OK only when
  ``ControllerConfig.tracing`` is on and the negotiated version is
  >= 3. On a granted channel EXECUTE may carry an optional
  ``trace_id``, and the matching RESULT/ERROR carries back ``trace``
  (the server-side span list, see ``repro.obs.trace``). Every field is
  conditional: untraced frames — and all frames to v2 or non-tracing
  peers — stay byte-identical to the pre-tracing encoding. See
  docs/observability.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DriverError

#: Protocol version spoken by the current controller/driver generation.
CLUSTER_PROTOCOL_VERSION = 3

#: First protocol version supporting session multiplexing / pipelining.
MULTIPLEX_MIN_VERSION = 3

#: First protocol version supporting the optional tracing fields
#: (CONNECT ``trace`` / CONNECT_OK ``tracing`` / EXECUTE ``trace_id`` /
#: RESULT-ERROR ``trace``).
TRACE_MIN_VERSION = 3

#: ERROR code for admission-control rejections: the controller's
#: worker pool is saturated past its configured bounds and the EXECUTE
#: was refused *before* reaching a backend, so the statement never ran
#: and the driver may safely retry it — with backoff — even inside a
#: transaction. Unknown to v2-era drivers, which surface it as a plain
#: OperationalError (still correct: the statement did not execute).
ERROR_SERVER_BUSY = "server_busy"

#: ERROR code an HA *follower* answers writes with: the statement never
#: ran here, the client should retry against the primary. The reply may
#: carry ``primary_host`` so a v3 driver can fail over straight to the
#: current primary instead of probing hosts in URL order (see
#: docs/ha.md). Older drivers surface it as a plain OperationalError
#: and fall back to ordinary host-by-host failover — still correct.
ERROR_NOT_PRIMARY = "not_primary"

#: ERROR code a peer answers a REPLICATE frame with when the frame's
#: epoch is older than the peer's: the sender was deposed (a sibling
#: was promoted with a higher epoch) and must stop acting as primary.
#: The reply carries ``epoch`` (the refusing peer's epoch) so the
#: deposed node adopts it instead of re-announcing its stale one.
ERROR_STALE_EPOCH = "stale_epoch"

#: Correlation field sanity bound: a request_id is a small positive
#: integer assigned per channel; anything outside this range is a
#: malformed frame, not a plausible 10k-pipelined client.
_MAX_REQUEST_ID = 2**63


class ClusterWireError(DriverError):
    """Malformed or unexpected cluster protocol message."""


class ClusterMessageType:
    CONNECT = "seq_connect"
    CONNECT_OK = "seq_connect_ok"
    EXECUTE = "seq_execute"
    RESULT = "seq_result"
    ERROR = "seq_error"
    CLOSE = "seq_close"
    PING = "seq_ping"
    PONG = "seq_pong"
    # Controller-to-controller group communication.
    GROUP = "seq_group"
    # v3 session multiplexing: logical sessions over one channel.
    SESSION_OPEN = "seq_session_open"
    SESSION_OPEN_OK = "seq_session_open_ok"
    SESSION_CLOSE = "seq_session_close"
    # Controller HA: recovery-log replication (primary -> follower) and
    # peer status probes used during election. See docs/ha.md.
    REPLICATE = "seq_replicate"
    REPLICATE_OK = "seq_replicate_ok"
    HA_STATUS = "seq_ha_status"
    HA_STATUS_OK = "seq_ha_status_ok"


def make_connect(
    virtual_database: str,
    user: Optional[str],
    password: Optional[str],
    protocol_version: int,
    options: Optional[Dict[str, Any]] = None,
    multiplex: bool = False,
    trace: bool = False,
) -> Dict[str, Any]:
    message = {
        "type": ClusterMessageType.CONNECT,
        "virtual_database": virtual_database,
        "user": user,
        "password": password,
        "protocol_version": protocol_version,
        "options": options or {},
    }
    if multiplex:
        # Only emitted when requested: v2 controllers ignore unknown
        # keys, but keeping the v2-era frame byte-identical when the
        # feature is off costs nothing.
        message["multiplex"] = True
    if trace:
        message["trace"] = True
    return message


def make_connect_ok(
    controller_id: str,
    protocol_version: int,
    session_id: str,
    multiplexing: bool = False,
    tracing: bool = False,
) -> Dict[str, Any]:
    message = {
        "type": ClusterMessageType.CONNECT_OK,
        "controller_id": controller_id,
        "protocol_version": protocol_version,
        "session_id": session_id,
    }
    if multiplexing:
        message["multiplexing"] = True
    if tracing:
        message["tracing"] = True
    return message


def make_execute(
    sql: str,
    params: Optional[Dict[str, Any]] = None,
    session_id: Optional[str] = None,
    request_id: Optional[int] = None,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    message = {"type": ClusterMessageType.EXECUTE, "sql": sql, "params": params or {}}
    if session_id is not None:
        message["session_id"] = session_id
    if request_id is not None:
        message["request_id"] = request_id
    if trace_id is not None:
        message["trace_id"] = trace_id
    return message


def make_result(columns: List[str], rows: List[Any], rowcount: int) -> Dict[str, Any]:
    if not (isinstance(rows, list) and all(type(row) is list for row in rows)):
        # Only reshape rows that need it (tuples, generators, odd row
        # types); scheduler results already arrive as a list of lists and
        # re-copying every row dominated result encoding on large
        # SELECTs (see benchmarks/test_bench_overhead.py). Anything not
        # already in exact wire shape is copied, so the frame stays
        # byte-identical to the v2 encoder's output.
        rows = [list(row) for row in rows]
    return {
        "type": ClusterMessageType.RESULT,
        "columns": columns,
        "rows": rows,
        "rowcount": rowcount,
    }


def make_error(code: str, message: str) -> Dict[str, Any]:
    return {"type": ClusterMessageType.ERROR, "code": code, "message": message}


def attach_trace(message: Dict[str, Any], spans: Any) -> Dict[str, Any]:
    """Attach server-side spans to a RESULT/ERROR frame: a span list, or
    the controller's pre-serialised JSON string (one flat value through
    the frame codec; ``Trace.spans_from_wire`` accepts both).

    Deliberately separate from ``make_result``/``make_error`` so the
    untraced reply path — the overwhelmingly common one — keeps its
    exact frame shape and the ``make_result`` no-copy fast path."""
    if spans and spans != "[]":
        message["trace"] = spans
    return message


def make_session_open(session_id: str, request_id: int) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.SESSION_OPEN,
        "session_id": session_id,
        "request_id": request_id,
    }


def make_session_open_ok(session_id: str, request_id: int) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.SESSION_OPEN_OK,
        "session_id": session_id,
        "request_id": request_id,
    }


def make_session_close(session_id: str) -> Dict[str, Any]:
    return {"type": ClusterMessageType.SESSION_CLOSE, "session_id": session_id}


def correlate(
    message: Dict[str, Any], require_request_id: bool = True
) -> Tuple[str, Optional[int]]:
    """Validate and return a v3 frame's ``(session_id, request_id)``.

    Raises :class:`ClusterWireError` on a missing/ill-typed field instead
    of letting garbage flow into the session registries, where a
    malformed id would either hang the sender (its reply can never be
    matched) or poison a worker. ``require_request_id=False`` accepts
    frames that correlate by session only (SESSION_CLOSE)."""
    session_id = message.get("session_id")
    if not isinstance(session_id, str) or not session_id:
        raise ClusterWireError(
            f"malformed session_id {session_id!r} in {message.get('type')!r} frame"
        )
    request_id = message.get("request_id")
    if request_id is None:
        if require_request_id:
            raise ClusterWireError(
                f"missing request_id in {message.get('type')!r} frame"
            )
        return session_id, None
    # bool is an int subclass; a True request_id is a bug, not id 1.
    if (
        not isinstance(request_id, int)
        or isinstance(request_id, bool)
        or not 0 < request_id < _MAX_REQUEST_ID
    ):
        raise ClusterWireError(
            f"malformed request_id {request_id!r} in {message.get('type')!r} frame"
        )
    return session_id, request_id


def make_group(operation: str, payload: Dict[str, Any], origin: str) -> Dict[str, Any]:
    """Controller group-communication envelope."""
    return {
        "type": ClusterMessageType.GROUP,
        "operation": operation,
        "payload": payload,
        "origin": origin,
    }


def make_replicate(
    origin: str,
    origin_address: str,
    epoch: int,
    entries: List[Dict[str, Any]],
    truncated_through: int,
    checkpoints: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Primary -> follower recovery-log replication frame.

    ``entries`` is the wire form of every retained log entry the primary
    believes the follower is missing (its indices are embedded, so the
    follower applies idempotently and reports gaps). ``truncated_through``
    mirrors the primary's compaction floor; ``checkpoints`` is the full
    live checkpoint-registry snapshot — small by construction (one row
    per named checkpoint), so shipping it whole every round is cheaper
    than a delta protocol and makes the follower's registry a pure
    function of the latest frame."""
    message = {
        "type": ClusterMessageType.REPLICATE,
        "origin": origin,
        "origin_address": origin_address,
        "epoch": epoch,
        "entries": entries,
        "truncated_through": truncated_through,
    }
    if checkpoints is not None:
        message["checkpoints"] = checkpoints
    return message


def make_replicate_ok(
    node_id: str, epoch: int, last_index: int, gap: bool = False
) -> Dict[str, Any]:
    """Follower ack: ``last_index`` is its log head after applying, which
    doubles as the backfill cursor when ``gap`` reports that the frame's
    first entry left a hole (primary resends from ``last_index``)."""
    message = {
        "type": ClusterMessageType.REPLICATE_OK,
        "node_id": node_id,
        "epoch": epoch,
        "last_index": last_index,
    }
    if gap:
        message["gap"] = True
    return message


def make_ha_status(origin: str) -> Dict[str, Any]:
    """Election probe: ask a peer for its role/epoch/log head."""
    return {"type": ClusterMessageType.HA_STATUS, "origin": origin}


def make_ha_status_ok(
    node_id: str, address: str, epoch: int, role: str, last_index: int
) -> Dict[str, Any]:
    return {
        "type": ClusterMessageType.HA_STATUS_OK,
        "node_id": node_id,
        "address": address,
        "epoch": epoch,
        "role": role,
        "last_index": last_index,
    }
