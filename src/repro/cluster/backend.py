"""Backend management: the controller's view of one database replica.

A backend wraps the way the controller reaches one underlying database —
by default through the conventional legacy driver, or through a
Drivolution bootloader when the controller itself uses Drivolution for its
database drivers (hybrid deployment, paper Section 5.3.2 / Figure 6).

Backends can be *disabled* (maintenance, driver upgrade, failure) and
later *re-enabled and resynchronised* from the recovery log: the paper's
"nodes must be temporarily disabled and re-enabled to renew all
connections around a consistent checkpoint".
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.recovery.dumper import DatabaseDump, DatabaseDumper
from repro.cluster.recovery.logstore import LogEntry
from repro.dbapi.exceptions import (
    DataError,
    IntegrityError,
    NotSupportedError,
    ProgrammingError,
)
from repro.errors import DriverError

#: Errors that blame the statement, not the replica or its connection: bad
#: SQL or a constraint violation must not tear down the backend connection
#: (the server session owns any open transaction, and reconnecting would
#: silently roll it back), and the scheduler uses the same distinction to
#: decide whether a failed write means the backend itself is unhealthy.
STATEMENT_FAULTS = (ProgrammingError, IntegrityError, DataError, NotSupportedError)


class BackendState(enum.Enum):
    ENABLED = "enabled"
    DISABLED = "disabled"
    RECOVERING = "recovering"
    FAILED = "failed"


class Backend:
    """One database replica behind a controller.

    ``connection_factory`` opens a fresh DB-API connection to the replica;
    the backend holds one connection at a time and re-opens it when the
    factory changes (e.g. after a driver upgrade) or after a failure.
    """

    def __init__(
        self, name: str, connection_factory: Callable[[], Any], weight: float = 1.0
    ) -> None:
        self.name = name
        self._connection_factory = connection_factory
        self._connection: Optional[Any] = None
        self.state = BackendState.ENABLED
        #: Index of the last recovery-log entry applied to this backend.
        self.checkpoint_index = 0
        #: Relative share of reads under the weighted load-balancing policy.
        self.weight = weight
        self._lock = threading.RLock()
        #: Statements executed against this backend (observability).
        self.statements_executed = 0
        #: When the failure detector last saw this backend answer a ping.
        self.last_heartbeat_at: float = 0.0
        self._pending = 0
        self._pending_lock = threading.Lock()

    # -- in-flight accounting ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Statements currently in flight (drives the least-pending policy)."""
        with self._pending_lock:
            return self._pending

    def begin_request(self) -> None:
        with self._pending_lock:
            self._pending += 1

    def finish_request(self) -> None:
        with self._pending_lock:
            self._pending = max(0, self._pending - 1)

    # -- connection management -------------------------------------------------

    def _ensure_connection(self) -> Any:
        with self._lock:
            if self._connection is None or getattr(self._connection, "closed", False):
                self._connection = self._connection_factory()
            return self._connection

    def replace_connection_factory(self, factory: Callable[[], Any]) -> None:
        """Swap how this backend connects (e.g. a new database driver).

        The current connection is closed so the next statement uses the new
        factory — the per-backend "renew all connections" step of the
        paper's database driver upgrade procedure.
        """
        with self._lock:
            self.close_connection()
            self._connection_factory = factory

    def close_connection(self) -> None:
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except Exception:
                    pass
                self._connection = None

    def connection_driver_info(self) -> Dict[str, Any]:
        """Driver metadata of the live backend connection (for experiments)."""
        with self._lock:
            connection = self._ensure_connection()
            return dict(connection.driver_info)

    # -- statement execution ---------------------------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None):
        """Run one statement on the replica, returning (columns, rows, rowcount)."""
        with self._lock:
            connection = self._ensure_connection()
            cursor = connection.cursor()
            try:
                cursor.execute(sql, params or {})
            except STATEMENT_FAULTS:
                # The statement was bad; the connection is fine. Keep it.
                raise
            except DriverError:
                # A failed statement may mean the connection (or replica) died;
                # drop the cached connection so the next call reconnects.
                self.close_connection()
                raise
            columns = [item[0] for item in (cursor.description or [])]
            rows = cursor.fetchall()
            rowcount = cursor.rowcount
            cursor.close()
            self.statements_executed += 1
            return columns, rows, rowcount

    def ping(self) -> bool:
        """Liveness probe: can the replica still answer?

        Uses the connection's own PING exchange when the driver offers
        one, otherwise a trivial SELECT. A failed probe drops the cached
        connection so the next probe (or statement) reconnects fresh."""
        with self._lock:
            try:
                connection = self._ensure_connection()
            except Exception:
                self.close_connection()
                return False
            probe = getattr(connection, "ping", None)
            try:
                if callable(probe):
                    alive = bool(probe())
                else:
                    connection.cursor().execute("SELECT 1")
                    alive = True
            except Exception:
                alive = False
            if not alive:
                self.close_connection()
            return alive

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.state == BackendState.ENABLED

    def disable(self, checkpoint_index: int) -> None:
        """Stop sending work to this backend, recording its checkpoint."""
        with self._lock:
            self.state = BackendState.DISABLED
            self.checkpoint_index = checkpoint_index
            self.close_connection()

    def mark_failed(self) -> None:
        with self._lock:
            self.state = BackendState.FAILED
            self.close_connection()

    def initialize_from_dump(
        self,
        dump: DatabaseDump,
        dumper: Optional[DatabaseDumper] = None,
        wipe_filter: Optional[Callable[[str], bool]] = None,
    ) -> int:
        """Cold-start this backend from a database dump.

        Wipes the replica's user tables (all of them, or only those
        ``wipe_filter`` returns True for — a partial replica keeps local
        tables no sibling can re-supply), replays the dump's schema and
        rows, and records the dump's checkpoint so a subsequent
        :meth:`resync` replays only the log tail written after the dump.
        The backend stays DISABLED — the scheduler's resync path flips it
        to ENABLED atomically with the write path. Returns the number of
        statements the restore executed."""
        dumper = dumper or DatabaseDumper()
        with self._lock:
            self.state = BackendState.RECOVERING
            try:
                statements = dumper.restore(dump, self.execute, wipe_filter=wipe_filter)
            except Exception:
                self.state = BackendState.FAILED
                raise
            self.checkpoint_index = dump.checkpoint_index
            self.state = BackendState.DISABLED
            return statements

    def resync(
        self,
        entries: List[LogEntry],
        entry_filter: Optional[Callable[[LogEntry], bool]] = None,
    ) -> int:
        """Replay missed writes and re-enable the backend.

        ``entry_filter`` (partial replication) decides per entry whether
        this replica must apply it; filtered-out entries still advance
        the checkpoint — the replica is *consistent* with them by virtue
        of not hosting the tables they touch. Returns the number of log
        entries actually executed.
        """
        with self._lock:
            self.state = BackendState.RECOVERING
            replayed = 0
            try:
                for entry in entries:
                    if entry.index <= self.checkpoint_index:
                        continue
                    if entry_filter is None or entry_filter(entry):
                        self.execute(entry.sql, entry.params)
                        replayed += 1
                    self.checkpoint_index = entry.index
            except Exception:
                # A replay that stops half-way leaves the replica behind
                # its peers; it must not re-enter the read rotation.
                self.state = BackendState.FAILED
                raise
            self.state = BackendState.ENABLED
            return replayed
