"""Backend management: the controller's view of one database replica.

A backend wraps the way the controller reaches one underlying database —
by default through the conventional legacy driver, or through a
Drivolution bootloader when the controller itself uses Drivolution for its
database drivers (hybrid deployment, paper Section 5.3.2 / Figure 6).

Backends can be *disabled* (maintenance, driver upgrade, failure) and
later *re-enabled and resynchronised* from the recovery log: the paper's
"nodes must be temporarily disabled and re-enabled to renew all
connections around a consistent checkpoint".
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.recovery.dumper import DatabaseDump, DatabaseDumper
from repro.cluster.recovery.logstore import LogEntry
from repro.dbapi.exceptions import (
    DataError,
    IntegrityError,
    NotSupportedError,
    ProgrammingError,
)
from repro.errors import DriverError

#: Errors that blame the statement, not the replica or its connection: bad
#: SQL or a constraint violation must not tear down the backend connection
#: (the server session owns any open transaction, and reconnecting would
#: silently roll it back), and the scheduler uses the same distinction to
#: decide whether a failed write means the backend itself is unhealthy.
STATEMENT_FAULTS = (ProgrammingError, IntegrityError, DataError, NotSupportedError)

#: Resync replays the log tail through execute_batch in chunks of this
#: many entries: bounded memory per round trip, still ~100× fewer round
#: trips than statement-at-a-time replay on a long tail.
_RESYNC_BATCH_SIZE = 128


class BackendState(enum.Enum):
    ENABLED = "enabled"
    DISABLED = "disabled"
    RECOVERING = "recovering"
    FAILED = "failed"


class Backend:
    """One database replica behind a controller.

    ``connection_factory`` opens a fresh DB-API connection to the replica;
    the backend holds one connection at a time and re-opens it when the
    factory changes (e.g. after a driver upgrade) or after a failure.
    """

    def __init__(
        self, name: str, connection_factory: Callable[[], Any], weight: float = 1.0
    ) -> None:
        self.name = name
        self._connection_factory = connection_factory
        self._connection: Optional[Any] = None
        self.state = BackendState.ENABLED
        #: Index of the last recovery-log entry applied to this backend.
        self.checkpoint_index = 0
        #: Relative share of reads under the weighted load-balancing policy.
        self.weight = weight
        self._lock = threading.RLock()
        #: Exactly which per-table sequence numbers were applied here
        #: (see LogEntry.table_seqs), as a low-water-mark floor plus a
        #: sparse set of sequences above it. Under conflict-aware locking
        #: a backend's checkpoint_index can race past an entry it missed
        #: (a write that failed here while a concurrent write succeeded);
        #: the failing writer then rolls the checkpoint back with
        #: :meth:`limit_checkpoint`, and these sequences let the wider
        #: replay *skip* entries this replica already applied instead of
        #: double-applying them. Membership must be **exact**, not a
        #: per-table maximum: with key-level locks two writers hit the
        #: same table concurrently, so this replica can apply sequence
        #: N+1 while missing N — a max would make the replay skip the
        #: missed entry and lose the update. The floor collapses the
        #: contiguous prefix (the common case — sequences arrive in
        #: order), so memory stays bounded by the number of gaps.
        self._applied_seq_floor: Dict[str, int] = {}
        self._applied_seq_sparse: Dict[str, Set[int]] = {}
        #: Statements executed against this backend (observability).
        self.statements_executed = 0
        #: When the failure detector last saw this backend answer a ping.
        self.last_heartbeat_at: float = 0.0
        self._pending = 0
        self._pending_lock = threading.Lock()

    # -- in-flight accounting ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Statements currently in flight (drives the least-pending policy)."""
        with self._pending_lock:
            return self._pending

    def begin_request(self) -> None:
        with self._pending_lock:
            self._pending += 1

    def finish_request(self) -> None:
        with self._pending_lock:
            self._pending = max(0, self._pending - 1)

    # -- connection management -------------------------------------------------

    def _ensure_connection(self) -> Any:
        with self._lock:
            if self._connection is None or getattr(self._connection, "closed", False):
                self._connection = self._connection_factory()
            return self._connection

    def replace_connection_factory(self, factory: Callable[[], Any]) -> None:
        """Swap how this backend connects (e.g. a new database driver).

        The current connection is closed so the next statement uses the new
        factory — the per-backend "renew all connections" step of the
        paper's database driver upgrade procedure.
        """
        with self._lock:
            self.close_connection()
            self._connection_factory = factory

    def close_connection(self) -> None:
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except Exception:
                    pass
                self._connection = None

    def connection_driver_info(self) -> Dict[str, Any]:
        """Driver metadata of the live backend connection (for experiments)."""
        with self._lock:
            connection = self._ensure_connection()
            return dict(connection.driver_info)

    # -- statement execution ---------------------------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None, track: bool = True):
        """Run one statement on the replica, returning (columns, rows, rowcount).

        ``track=False`` leaves ``statements_executed`` untouched — for
        controller-internal catalog probes (primary-key resolution) that
        are not client work and would skew the observability counter.

        Statements normally serialise on the per-backend lock: the one
        cached connection is not thread-safe, and DB-API level 1 only
        promises threads may share the *module*. A connection that
        declares ``threadsafety >= 2`` (threads may share connections —
        a replica that processes disjoint-row statements concurrently)
        executes outside the lock, so key-level lock scopes can actually
        overlap on one replica instead of re-serialising here."""
        with self._lock:
            connection = self._ensure_connection()
            if getattr(connection, "threadsafety", 1) < 2:
                return self._run_statement(connection, sql, params, track)
        return self._run_statement(connection, sql, params, track)

    def _run_statement(
        self, connection: Any, sql: str, params: Optional[Dict[str, Any]], track: bool
    ):
        cursor = connection.cursor()
        try:
            cursor.execute(sql, params or {})
        except STATEMENT_FAULTS:
            # The statement was bad; the connection is fine. Keep it.
            raise
        except DriverError:
            # A failed statement may mean the connection (or replica) died;
            # drop the cached connection so the next call reconnects.
            self.close_connection()
            raise
        columns = [item[0] for item in (cursor.description or [])]
        rows = cursor.fetchall()
        rowcount = cursor.rowcount
        cursor.close()
        if track:
            with self._lock:
                self.statements_executed += 1
        return columns, rows, rowcount

    def execute_batch(
        self,
        statements: List[Tuple[str, Optional[Dict[str, Any]]]],
        track: bool = True,
    ) -> List[Tuple[Optional[Tuple[List[str], List[Any], int]], Optional[Exception]]]:
        """Run an ordered list of ``(sql, params)`` pairs in one round trip.

        The whole batch costs **one** per-backend lock acquisition (one
        simulated round trip) instead of one per statement. Returns one
        ``(result, error)`` pair per statement, positionally: ``result``
        is the usual ``(columns, rows, rowcount)`` triple, ``error`` the
        exception that statement raised (statement faults are captured
        per position; a connection-level failure poisons the failing
        statement *and everything after it* — order means later
        statements must not run past a dead connection).

        Connections that offer a native ``execute_batch(pairs)`` — the
        wire-level batch — get the whole list at once and must return one
        outcome per statement (a ``(columns, rows, rowcount)`` triple or
        an Exception instance, in order). Everything else falls back to a
        per-statement loop that still pays the lock only once."""
        if not statements:
            return []
        with self._lock:
            connection = self._ensure_connection()
            if getattr(connection, "threadsafety", 1) < 2:
                return self._run_batch(connection, statements, track)
        return self._run_batch(connection, statements, track)

    def _run_batch(
        self,
        connection: Any,
        statements: List[Tuple[str, Optional[Dict[str, Any]]]],
        track: bool,
    ) -> List[Tuple[Optional[Tuple[List[str], List[Any], int]], Optional[Exception]]]:
        native = getattr(connection, "execute_batch", None)
        if callable(native):
            try:
                raw = native([(sql, dict(params or {})) for sql, params in statements])
                if not isinstance(raw, list) or len(raw) != len(statements):
                    raise DriverError(
                        f"native batch returned "
                        f"{len(raw) if isinstance(raw, list) else type(raw).__name__}"
                        f" outcomes for {len(statements)} statements"
                    )
            except Exception as exc:
                if not isinstance(exc, STATEMENT_FAULTS):
                    # The batch call itself died: connection-level fault.
                    self.close_connection()
                return [(None, exc)] * len(statements)
            outcomes: List[
                Tuple[Optional[Tuple[List[str], List[Any], int]], Optional[Exception]]
            ] = []
            succeeded = 0
            for item in raw:
                if isinstance(item, Exception):
                    outcomes.append((None, item))
                else:
                    columns, rows, rowcount = item
                    outcomes.append(((columns, rows, rowcount), None))
                    succeeded += 1
            if track and succeeded:
                with self._lock:
                    self.statements_executed += succeeded
            return outcomes
        outcomes = []
        for position, (sql, params) in enumerate(statements):
            try:
                outcomes.append((self._run_statement(connection, sql, params, track), None))
            except STATEMENT_FAULTS as exc:
                # That statement was bad; the connection — and the rest of
                # the batch — are fine.
                outcomes.append((None, exc))
            except Exception as exc:
                # _run_statement already dropped the cached connection on a
                # DriverError; the remaining statements have nowhere to run
                # and must not be skipped silently.
                for _ in range(position, len(statements)):
                    outcomes.append((None, exc))
                break
        return outcomes

    def ping(self) -> bool:
        """Liveness probe: can the replica still answer?

        Uses the connection's own PING exchange when the driver offers
        one, otherwise a trivial SELECT. A failed probe drops the cached
        connection so the next probe (or statement) reconnects fresh."""
        with self._lock:
            try:
                connection = self._ensure_connection()
            except Exception:
                self.close_connection()
                return False
            probe = getattr(connection, "ping", None)
            try:
                if callable(probe):
                    alive = bool(probe())
                else:
                    connection.cursor().execute("SELECT 1")
                    alive = True
            except Exception:
                alive = False
            if not alive:
                self.close_connection()
            return alive

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.state == BackendState.ENABLED

    def _record_applied_seq_locked(self, table: str, seq: int) -> None:
        floor = self._applied_seq_floor.get(table, 0)
        if seq <= floor:
            return
        sparse = self._applied_seq_sparse.setdefault(table, set())
        sparse.add(seq)
        # Collapse the contiguous prefix into the floor.
        while floor + 1 in sparse:
            floor += 1
            sparse.discard(floor)
        if floor:
            self._applied_seq_floor[table] = floor
        if not sparse:
            self._applied_seq_sparse.pop(table, None)

    def _seq_applied_locked(self, table: str, seq: int) -> bool:
        if seq <= self._applied_seq_floor.get(table, 0):
            return True
        return seq in self._applied_seq_sparse.get(table, ())

    def has_applied_seqs(self, table_seqs: Dict[str, int]) -> bool:
        """Whether every per-table sequence of one log entry was already
        applied here — **exact** membership, so an entry this replica
        missed is never shadowed by a later same-table entry it applied."""
        if not table_seqs:
            return False
        with self._lock:
            return all(
                self._seq_applied_locked(table, seq) for table, seq in table_seqs.items()
            )

    def advance_checkpoint(self, index: int, table_seqs: Optional[Dict[str, int]] = None) -> None:
        """Record that this backend applied the log through ``index``.

        Only moves forward, and only while ENABLED: a backend that a
        concurrent writer just marked FAILED stopped applying writes at
        its failure, and advancing its checkpoint past an entry it
        missed would make the next resync silently skip that entry.
        ``table_seqs`` additionally records the entry's per-table
        sequences as applied — recorded regardless of state, because a
        successful execution is ground truth even on a replica that a
        concurrent writer just failed, and it is exactly what lets the
        wider replay skip the statement instead of double-applying it."""
        with self._lock:
            if table_seqs:
                for table, seq in table_seqs.items():
                    self._record_applied_seq_locked(table, seq)
            if self.state is BackendState.ENABLED and index > self.checkpoint_index:
                self.checkpoint_index = index

    def limit_checkpoint(self, index: int) -> None:
        """Clamp the checkpoint down to ``index`` — called by a writer
        whose broadcast failed here, so the failed entry stays inside the
        next resync's replay range even if a concurrent disjoint write
        advanced the checkpoint past it in the meantime."""
        with self._lock:
            if index < self.checkpoint_index:
                self.checkpoint_index = index

    def disable(self, checkpoint_index: int) -> None:
        """Stop sending work to this backend, recording its checkpoint."""
        with self._lock:
            self.state = BackendState.DISABLED
            self.checkpoint_index = checkpoint_index
            self.close_connection()

    def mark_failed(self) -> None:
        with self._lock:
            self.state = BackendState.FAILED
            self.close_connection()

    def initialize_from_dump(
        self,
        dump: DatabaseDump,
        dumper: Optional[DatabaseDumper] = None,
        wipe_filter: Optional[Callable[[str], bool]] = None,
    ) -> int:
        """Cold-start this backend from a database dump.

        Wipes the replica's user tables (all of them, or only those
        ``wipe_filter`` returns True for — a partial replica keeps local
        tables no sibling can re-supply), replays the dump's schema and
        rows, and records the dump's checkpoint so a subsequent
        :meth:`resync` replays only the log tail written after the dump.
        The backend stays DISABLED — the scheduler's resync path flips it
        to ENABLED atomically with the write path. Returns the number of
        statements the restore executed."""
        dumper = dumper or DatabaseDumper()
        with self._lock:
            self.state = BackendState.RECOVERING
            try:
                statements = dumper.restore(dump, self.execute, wipe_filter=wipe_filter)
            except Exception:
                self.state = BackendState.FAILED
                raise
            self.checkpoint_index = dump.checkpoint_index
            # The restored state is exactly the dump's: any per-table
            # sequence recorded before the wipe is about rows that no
            # longer exist, and keeping it would make the tail replay
            # skip entries the restored state actually needs.
            self._applied_seq_floor = {}
            self._applied_seq_sparse = {}
            self.state = BackendState.DISABLED
            return statements

    def resync(
        self,
        entries: List[LogEntry],
        entry_filter: Optional[Callable[[LogEntry], bool]] = None,
    ) -> int:
        """Replay missed writes and re-enable the backend.

        ``entry_filter`` (partial replication) decides per entry whether
        this replica must apply it; filtered-out entries still advance
        the checkpoint — the replica is *consistent* with them by virtue
        of not hosting the tables they touch. Entries whose every
        per-table sequence this replica already applied are skipped too
        (the conflict-aware write path can roll a checkpoint back past a
        write this replica *did* apply — see :meth:`limit_checkpoint` —
        and replaying it twice would fail on non-idempotent statements).
        The replay also verifies per-table sequences never regress: log
        index order must preserve per-table order, or the replica would
        end up with writes applied backwards. Returns the number of log
        entries actually executed.
        """
        with self._lock:
            self.state = BackendState.RECOVERING
            replayed = 0
            replay_floor: Dict[str, int] = {}
            # Replayable entries accumulate and are applied through
            # execute_batch in chunks: a long tail replay costs one
            # round trip per chunk instead of one per entry. A chunk is
            # flushed before any *skipped* entry advances the checkpoint,
            # so the checkpoint never claims an index whose predecessors
            # are still unapplied.
            pending: List[LogEntry] = []

            def flush() -> None:
                nonlocal replayed
                if not pending:
                    return
                batch = [(entry.sql, entry.params) for entry in pending]
                for entry, (result, error) in zip(pending, self.execute_batch(batch)):
                    if error is not None:
                        raise error
                    replayed += 1
                    for table, seq in entry.table_seqs.items():
                        self._record_applied_seq_locked(table, seq)
                    self.checkpoint_index = entry.index
                pending.clear()

            try:
                for entry in entries:
                    for table, seq in entry.table_seqs.items():
                        if seq <= replay_floor.get(table, 0):
                            raise DriverError(
                                f"recovery log violates per-table order: table "
                                f"{table!r} sequence {seq} at index {entry.index} "
                                f"does not follow {replay_floor[table]}"
                            )
                        replay_floor[table] = seq
                    if entry.index <= self.checkpoint_index:
                        continue
                    already_applied = bool(entry.table_seqs) and all(
                        self._seq_applied_locked(table, seq)
                        for table, seq in entry.table_seqs.items()
                    )
                    if not already_applied and (
                        entry_filter is None or entry_filter(entry)
                    ):
                        pending.append(entry)
                        if len(pending) >= _RESYNC_BATCH_SIZE:
                            flush()
                    else:
                        flush()
                        self.checkpoint_index = entry.index
                flush()
            except Exception:
                # A replay that stops half-way leaves the replica behind
                # its peers; it must not re-enter the read rotation.
                self.state = BackendState.FAILED
                raise
            self.state = BackendState.ENABLED
            return replayed
