"""Query-result cache with table-accurate invalidation.

SELECT results are cached keyed by ``(sql, params)`` together with the
set of tables the statement reads (as extracted by
:mod:`repro.cluster.classifier`, which canonicalises quoted and
schema-qualified spellings to one key). A write invalidates exactly the
cached entries that read one of the tables it touches — a write to table
A never evicts a SELECT that only reads table B. A write whose table set
is unknown (unparseable statement) flushes the whole cache — and, at the
scheduler, also bypasses placement routing entirely: it broadcasts to
every enabled backend no matter the RAIDb level.

Reads race with writes: a read may execute on a backend, then a write
commits and invalidates, and only then does the read try to store its —
now stale — result. Every lookup therefore starts with :meth:`stamp`,
and :meth:`put` refuses results whose stamp predates an invalidation of
any table they read.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

CacheKey = Tuple[str, Tuple[Tuple[str, Any], ...]]
QueryResult = Tuple[List[str], List[Any], int]


@dataclass
class _Entry:
    result: QueryResult
    tables: FrozenSet[str]


def _freeze_rows(rows: Iterable[Any]) -> List[Any]:
    """Snapshot result rows so cache and callers share no mutable object.

    ``get`` used to return ``list(rows)`` — a fresh list, but of the
    *same* row objects the cache holds, so a caller mutating a returned
    row poisoned the cached result for every later hit. Rows are tuples
    of scalars in practice (frozen as such here); anything else is
    deep-copied as the safe general case."""
    return [
        tuple(row) if isinstance(row, (tuple, list)) else copy.deepcopy(row)
        for row in rows
    ]


class QueryCache:
    """Bounded LRU cache of SELECT results, invalidated by table."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._by_table: Dict[str, Set[CacheKey]] = {}
        self._lock = threading.Lock()
        # Monotonic invalidation clock: bumped on every invalidation, with
        # per-table floors so late put()s of stale results are rejected.
        self._version = 0
        self._table_floor: Dict[str, int] = {}
        self._global_floor = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @staticmethod
    def make_key(sql: str, params: Optional[Dict[str, Any]] = None) -> CacheKey:
        # Values come straight off the wire and may be unhashable (lists,
        # dicts); key on their repr so a weird parameter degrades to a
        # cache miss instead of a TypeError killing the session thread.
        items = tuple(
            (name, repr(value)) for name, value in sorted((params or {}).items())
        )
        return (sql, items)

    # -- lookup ----------------------------------------------------------------

    def stamp(self) -> int:
        """Current invalidation clock; capture *before* executing the read."""
        with self._lock:
            return self._version

    def get(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Optional[QueryResult]:
        key = self.make_key(sql, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            columns, rows, rowcount = entry.result
            # Fresh outer lists AND frozen rows: the caller can neither
            # grow the cached result nor mutate a row in place.
            return list(columns), _freeze_rows(rows), rowcount

    def put(
        self,
        sql: str,
        params: Optional[Dict[str, Any]],
        tables: Iterable[str],
        result: QueryResult,
        stamp: Optional[int] = None,
    ) -> bool:
        """Store one result; returns False if it was stale (see module doc)."""
        key = self.make_key(sql, params)
        table_set = frozenset(table.lower() for table in tables)
        with self._lock:
            if stamp is not None:
                if stamp < self._global_floor:
                    return False
                if any(self._table_floor.get(table, 0) > stamp for table in table_set):
                    return False
            if key in self._entries:
                self._unlink_locked(key)
            columns, rows, rowcount = result
            # Freeze on the way in as well: the caller still holds the
            # very row objects it handed us and may mutate them later.
            self._entries[key] = _Entry(
                (list(columns), _freeze_rows(rows), rowcount), table_set
            )
            for table in table_set:
                self._by_table.setdefault(table, set()).add(key)
            while len(self._entries) > self._max_entries:
                self._unlink_locked(next(iter(self._entries)))
                self.evictions += 1
            return True

    # -- invalidation ----------------------------------------------------------

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Evict entries reading any of ``tables``; empty ⇒ flush everything."""
        table_set = frozenset(table.lower() for table in tables)
        with self._lock:
            self._version += 1
            if not table_set:
                return self._clear_locked()
            evicted = 0
            for table in table_set:
                self._table_floor[table] = self._version
                for key in list(self._by_table.get(table, ())):
                    self._unlink_locked(key)
                    evicted += 1
            self.invalidations += evicted
            return evicted

    def clear(self) -> int:
        with self._lock:
            self._version += 1
            return self._clear_locked()

    def _clear_locked(self) -> int:
        evicted = len(self._entries)
        self._entries.clear()
        self._by_table.clear()
        self._global_floor = self._version
        self.invalidations += evicted
        return evicted

    def _unlink_locked(self, key: CacheKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for table in entry.tables:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    self._by_table.pop(table, None)

    # -- observability ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }
