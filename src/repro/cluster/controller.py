"""The cluster controller (Sequoia's central component).

A controller exposes one *virtual database* to clients over the cluster
wire protocol and maps every statement onto the replicated backends via
the request scheduler. It supports:

- protocol-version checking at connection time (drivers may be older than
  the controller, never newer),
- disabling a backend around a consistent checkpoint and re-enabling it
  with a resync from the recovery log,
- hosting extensions on its listener — this is how the embedded
  Drivolution server of the hybrid deployment (Figure 6) answers
  bootloader requests on the controller's own address,
- group communication with peer controllers, used to replicate Drivolution
  driver installations so that "all client applications can be upgraded no
  matter which server they are connected to".
"""

from __future__ import annotations

import os
import threading
import uuid
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.classifier import classify, normalize_table_name
from repro.cluster.loadbalancer import create_policy
from repro.cluster.locks import LockManager
from repro.cluster.placement import PlacementMap, create_placement
from repro.cluster.querycache import QueryCache
from repro.cluster.recovery import (
    CheckpointRegistry,
    DatabaseDump,
    DatabaseDumper,
    FailureDetector,
    FileLogStore,
    GroupCommit,
    MemoryLogStore,
    RecoveryLog,
    ReplicatedLogStore,
)
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.core.clock import Clock, wall_clock
from repro.cluster.wire import (
    CLUSTER_PROTOCOL_VERSION,
    ERROR_NOT_PRIMARY,
    ERROR_SERVER_BUSY,
    MULTIPLEX_MIN_VERSION,
    TRACE_MIN_VERSION,
    ClusterMessageType,
    ClusterWireError,
    attach_trace,
    correlate,
    make_connect_ok,
    make_error,
    make_group,
    make_ha_status,
    make_ha_status_ok,
    make_result,
    make_session_open_ok,
)
from repro.obs import MetricsRegistry, SlowQueryLog, Trace, render_json, render_prometheus
from repro.core.constants import DEFAULT_LEASE_TIME_MS, ExpirationPolicy, RenewPolicy
from repro.core.package import DriverPackage
from repro.core.registry import DriverPermission
from repro.core.server import DrivolutionServer
from repro.errors import DriverError, ReproError, TransportError
from repro.netsim.transport import Address, Channel, ChannelServer, Network

#: Extension handlers receive (channel, first_message), as for the database server.
ExtensionHandler = Callable[[Channel, Dict[str, Any]], None]


@dataclass
class ControllerConfig:
    """Static configuration of one controller."""

    controller_id: str = field(default_factory=lambda: f"controller-{uuid.uuid4().hex[:6]}")
    virtual_database: str = "vdb"
    protocol_version: int = CLUSTER_PROTOCOL_VERSION
    #: Oldest driver protocol version this controller still accepts.
    min_client_protocol_version: int = 1
    #: Read load-balancing policy (see repro.cluster.loadbalancer).
    read_policy: str = "round_robin"
    #: Extra keyword arguments for the policy (e.g. weighted's ``weights``).
    policy_options: Dict[str, Any] = field(default_factory=dict)
    #: Broadcast writes to all backends concurrently.
    parallel_writes: bool = True
    #: Thread-pool width of the parallel write broadcaster. None (the
    #: default) auto-scales with the broadcast fan-out, so clusters with
    #: more than 8 replicas are not serialised by a fixed pool. The pool
    #: is shared by every concurrent broadcast, so under conflict-aware
    #: locking an explicit value should be sized for replicas-per-write x
    #: expected concurrent disjoint writers — a saturated pool queues
    #: half of each broadcast (watch
    #: stats()["scheduler"]["broadcast"]["in_flight"]).
    write_concurrency: Optional[int] = None
    #: Serve protocol-v3 clients over multiplexed channels: one physical
    #: channel carries many logical sessions (correlated by
    #: session_id/request_id), statements run on a fixed worker pool and
    #: controller thread count stays O(channels), not O(sessions). Off —
    #: or with a v2 client — every channel is a dedicated per-connection
    #: session exactly as before (see docs/wire.md).
    multiplexing: bool = True
    #: Statement-execution workers shared by all multiplexed sessions.
    worker_pool_size: int = 16
    #: Batch recovery-log fsyncs across concurrent writers (group
    #: commit). Only effective on a durable log (log_dir + log_fsync):
    #: the store's per-append fsync is replaced by one fsync per commit
    #: group, and no statement is acknowledged before its entry is
    #: durable. Off restores the per-append fsync path byte for byte.
    group_commit: bool = True
    #: Extra window (milliseconds) a group-commit leader waits to gather
    #: more writers before its fsync. 0 (default) piggybacks only on
    #: natural concurrency and adds no latency.
    group_commit_window_ms: float = 0.0
    #: Coalesce concurrent auto-commit writers with matching replica
    #: sets into one broadcast round trip + one batch log append (the
    #: execution-side mirror of group commit — see WriteBatcher in
    #: docs/scheduling.md). Off keeps the per-statement broadcast path
    #: byte-identical to previous releases.
    write_batching: bool = True
    #: Extra window (milliseconds) a write-batch leader waits to gather
    #: more writers before its round. 0 (default) batches only what
    #: queued while the previous round was in flight.
    write_batch_window_ms: float = 0.0
    #: Admission control: statements a single multiplexed session may
    #: have queued before further EXECUTEs get a retryable
    #: ``server_busy`` ERROR (bounds per-session memory under runaway
    #: pipelining). None = unbounded, the pre-admission behaviour.
    max_session_queue_depth: Optional[int] = 256
    #: Admission control: statements queued-or-executing across the
    #: whole controller before EXECUTEs get ``server_busy`` (bounds
    #: total queueing when the worker pool saturates — clients back off
    #: and retry instead of queueing unboundedly). None (default) = off.
    max_in_flight_statements: Optional[int] = None
    #: Conflict-aware write scheduling: writes acquire table-level locks
    #: from the classifier's table sets, so statements touching disjoint
    #: tables execute and broadcast in parallel (see docs/scheduling.md).
    #: False restores the single global write lock (every broadcast
    #: totally ordered) — the E15 benchmark's baseline.
    conflict_aware_locking: bool = True
    #: Key-level lock scopes on top of conflict-aware locking: a
    #: single-row INSERT/UPDATE/DELETE whose primary-key value is fully
    #: resolved locks just (table, key), so writers on disjoint rows of
    #: the same table run in parallel. Anything not provably single-row
    #: (range predicates, multi-row inserts, positional params, PK
    #: reassignment, DDL) falls back to a table lock. No effect while
    #: conflict_aware_locking is False.
    key_level_locking: bool = True
    #: Cache SELECT results with table-based invalidation. Off by default:
    #: with several controllers in a group, writes routed through a peer do
    #: not invalidate this controller's cache.
    query_cache_enabled: bool = False
    query_cache_size: int = 256
    #: Table placement (RAIDb level) as a spec string — parseable from any
    #: string-carrying layer (URL options, config files): ``full``
    #: (RAIDb-1, the default), ``hash:N`` (RAIDb-2, each table on N
    #: backends), ``raidb0`` (partitioning, no redundancy), or
    #: ``explicit:users=db1+db2,orders=db3``. None keeps full replication.
    placement: Optional[str] = None
    #: Directory for the durable recovery log (segmented JSONL) and the
    #: persisted checkpoint registry. None keeps the log in memory. Each
    #: controller needs its own directory: it replays *its* write order.
    log_dir: Optional[str] = None
    #: fsync every appended log entry (durability over latency).
    log_fsync: bool = False
    #: Entries per log segment before rolling a new file.
    log_segment_entries: int = 256
    #: Compact the log every N appends (0 = only on demand). Compaction
    #: truncates entries older than the oldest live named checkpoint.
    auto_compact_every: int = 0
    #: Controller HA (docs/ha.md): addresses of the *other* controllers
    #: replicating this recovery log. Non-empty activates the
    #: ReplicatedLogStore wrap — the primary's group-commit flush pushes
    #: each fsync group to these peers and requires a strict cluster
    #: majority (counting itself) before any write is acknowledged, and
    #: followers refuse writes with a retryable ``not_primary`` ERROR.
    #: Use 3 controllers: a 2-node cluster's majority is 2, so either
    #: node's death halts writes (deliberately — see docs/ha.md).
    ha_peers: List[Address] = field(default_factory=list)
    #: Force this node's initial HA role. None (default) derives it
    #: deterministically: the lexicographically smallest controller
    #: address starts as primary.
    ha_primary: Optional[bool] = None
    #: Seconds a replication round waits for one follower's ack.
    ha_ack_timeout_s: float = 5.0
    #: Seconds an election probe waits for a peer's HA_STATUS_OK.
    ha_probe_timeout_s: float = 2.0
    #: Run the heartbeat failure detector from a background thread while
    #: the controller is started. ``Controller.heartbeat()`` can always be
    #: called manually (experiments drive it from a simulated clock).
    failure_detector_enabled: bool = False
    #: Seconds between background heartbeat rounds.
    heartbeat_interval: float = 1.0
    #: Consecutive missed heartbeats before a backend is auto-disabled.
    heartbeat_misses: int = 2
    #: Automatically resync auto-disabled/failed backends that answer
    #: pings again (falls back to a dump-based cold start when the log
    #: was compacted past their checkpoint).
    auto_resync: bool = True
    #: Per-statement tracing (see docs/observability.md): every statement
    #: gets a Trace whose stage spans feed the latency histogram and the
    #: slow-query log, and v3 clients that negotiated tracing get the
    #: span list back on their RESULT/ERROR frames. Off (the default)
    #: keeps the statement path free of trace objects entirely.
    tracing: bool = False
    #: Statements faster than this never enter the slow-query log
    #: (its fast path is then a single float compare). 0 captures
    #: everything the capacity bound allows. Only meaningful with
    #: ``tracing`` on.
    slow_query_threshold_ms: float = 0.0
    #: How many slowest-since-startup statements the slow-query log keeps.
    slow_query_capacity: int = 32


@dataclass
class SessionContext:
    """Per-client-session state, one per connected driver session.

    Replaces the transaction bookkeeping that previously lived as a local
    variable (and keyword sniffing) inside the client-serving loop.
    """

    session_id: str
    in_transaction: bool = False
    statements: int = 0
    failed: int = 0

    def observe(self, command: str, is_transaction_control: bool) -> None:
        """Update the transaction state after a statement executed."""
        if not is_transaction_control:
            return
        if command in ("BEGIN", "START"):
            self.in_transaction = True
        elif command in ("COMMIT", "ROLLBACK"):
            self.in_transaction = False


#: Queue sentinel ordering a session's close after its pending executes.
_CLOSE_SESSION = object()


class _MuxSession:
    """One logical session on a multiplexed channel: its context plus a
    FIFO of pending statements. ``scheduled`` is True while a worker-pool
    task owns the queue; statements of one session never run concurrently
    (per-session order is preserved) while different sessions' statements
    interleave freely across the pool."""

    __slots__ = ("context", "queue", "scheduled", "closed")

    def __init__(self, context: SessionContext) -> None:
        self.context = context
        self.queue: deque = deque()
        self.scheduled = False
        self.closed = False


class _MuxChannelState:
    """Server-side state of one multiplexed physical channel."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        #: Serialises concurrent workers' replies onto the one channel.
        self.send_lock = threading.Lock()
        #: Guards ``sessions`` and every _MuxSession's queue/flags.
        self.lock = threading.Lock()
        self.sessions: Dict[str, _MuxSession] = {}


class Controller:
    """One Sequoia-like controller."""

    def __init__(
        self,
        config: ControllerConfig,
        network: Network,
        address: Address,
        backends: Optional[List[Backend]] = None,
        clock: Clock = wall_clock,
    ) -> None:
        self.config = config
        self.network = network
        self.address = address
        self.clock = clock
        ha_enabled = bool(config.ha_peers)
        # HA piggybacks on the group-commit coordinator: wait_durable's
        # flush is where the majority-ack replication round runs (one
        # round per fsync group, not per entry), so HA keeps a
        # coordinator even over a volatile store — the memory store's
        # flush is a no-op fsync, but the round still happens.
        group_commit_active = (
            config.log_dir is not None and config.log_fsync and config.group_commit
        ) or ha_enabled
        if config.log_dir is not None:
            os.makedirs(config.log_dir, exist_ok=True)
            store = FileLogStore(
                config.log_dir,
                segment_max_entries=config.log_segment_entries,
                # Under group commit the fsync moves from each append to
                # the group coordinator's flush — durability is preserved
                # (no reply before wait_durable returns) at a fraction of
                # the fsync count.
                fsync_on_append=config.log_fsync and not group_commit_active,
            )
            checkpoints = CheckpointRegistry(os.path.join(config.log_dir, "checkpoints.json"))
        else:
            store = MemoryLogStore()
            checkpoints = CheckpointRegistry()
        self.ha_store: Optional[ReplicatedLogStore] = None
        if ha_enabled:
            self.ha_store = ReplicatedLogStore(
                store,
                network,
                node_id=config.controller_id,
                self_address=address,
                peer_addresses=list(config.ha_peers),
                initial_primary=config.ha_primary,
                ack_timeout_s=config.ha_ack_timeout_s,
                meta_path=(
                    os.path.join(config.log_dir, "ha.json")
                    if config.log_dir is not None
                    else None
                ),
            )
            self.ha_store.set_checkpoint_snapshot_provider(checkpoints.snapshot)
            store = self.ha_store
        self.recovery_log = RecoveryLog(
            store=store,
            checkpoints=checkpoints,
            auto_compact_every=config.auto_compact_every,
        )
        #: Serialises election attempts (non-blocking: a write that finds
        #: an election already running just reports not_primary).
        self._election_lock = threading.Lock()
        self.group_commit = (
            GroupCommit(self.recovery_log, window_s=config.group_commit_window_ms / 1000.0)
            if group_commit_active
            else None
        )
        self.scheduler = RequestScheduler(
            backends or [],
            self.recovery_log,
            read_policy=create_policy(config.read_policy, **config.policy_options),
            query_cache=(
                QueryCache(max_entries=config.query_cache_size)
                if config.query_cache_enabled
                else None
            ),
            broadcaster=WriteBroadcaster(
                parallel=config.parallel_writes, max_workers=config.write_concurrency
            ),
            placement=create_placement(config.placement),
            lock_manager=LockManager(conflict_aware=config.conflict_aware_locking),
            key_level_locking=config.key_level_locking,
            group_commit=self.group_commit,
            write_batching=config.write_batching,
            write_batch_window_s=config.write_batch_window_ms / 1000.0,
        )
        self.failure_detector = FailureDetector(
            self.scheduler,
            clock=clock,
            max_misses=config.heartbeat_misses,
            auto_resync=config.auto_resync,
            dumper_factory=DatabaseDumper,
        )
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()
        #: Background detection rounds that raised (kept alive regardless).
        self.heartbeat_errors = 0
        self.last_heartbeat_error: Optional[str] = None
        self._sessions: Dict[str, SessionContext] = {}
        self._extensions: Dict[str, ExtensionHandler] = {}
        # Multiplexed front end: a fixed statement-worker pool shared by
        # every logical session, and the live mux channel states (each
        # owns one reader thread — the ChannelServer handler).
        self._worker_pool: Optional[ThreadPoolExecutor] = None
        self._mux_channels: set = set()
        self._channel_server: Optional[ChannelServer] = None
        self._peers: List[Address] = []
        self._lock = threading.Lock()
        self.drivolution: Optional[DrivolutionServer] = None
        #: Statements served to clients (observability for experiments).
        self.statements_served = 0
        self.failed_statements = 0
        # Admission control (guarded by _lock): statements admitted and
        # not yet finished — queued in a session FIFO or executing on a
        # worker — against config.max_in_flight_statements.
        self._in_flight_statements = 0
        self._in_flight_peak = 0
        #: EXECUTEs refused with a ``server_busy`` ERROR (either bound).
        self.server_busy_rejections = 0
        # Observability: one registry unifies first-class instruments
        # with every subsystem's existing stats() dict (registered as
        # collectors, so their shapes stay untouched). The slow-query
        # log and the latency histogram are only fed when tracing is on.
        self.metrics = MetricsRegistry()
        self.slow_queries = SlowQueryLog(
            capacity=config.slow_query_capacity,
            threshold_ms=config.slow_query_threshold_ms,
        )
        self._statement_latency = self.metrics.histogram(
            "statement_latency_seconds", "End-to-end latency of traced statements"
        )
        self._traced_statements = self.metrics.counter(
            "traced_statements", "Statements executed with a trace attached"
        )
        self.metrics.register_collector("controller", self._controller_stats)
        self.metrics.register_collector("front_end", self._front_end_stats)
        self.metrics.register_collector("scheduler", self.scheduler.stats)
        self.metrics.register_collector("recovery", self._recovery_stats)
        self.metrics.register_collector("slow_queries", self.slow_queries.stats)
        if self.ha_store is not None:
            self.metrics.register_collector("ha", self.ha_store.ha_stats)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Controller":
        if self._channel_server is not None:
            return self
        self.scheduler.broadcaster.reopen()
        if self.config.multiplexing and self._worker_pool is None:
            # Threads spawn lazily on demand, so an idle pool costs
            # nothing; its size is the fixed ceiling on statement
            # concurrency no matter how many logical sessions are open.
            self._worker_pool = ThreadPoolExecutor(
                max_workers=max(1, self.config.worker_pool_size),
                thread_name_prefix=f"{self.config.controller_id}-mux",
            )
        listener = self.network.listen(self.address)
        self._channel_server = ChannelServer(
            listener, self._handle_channel, name=self.config.controller_id
        )
        self._channel_server.start()
        if self.config.failure_detector_enabled and self.config.heartbeat_interval > 0:
            self._heartbeat_stop.clear()
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"{self.config.controller_id}-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()
        return self

    def stop(self, flush: bool = True) -> None:
        """Stop serving. ``flush=False`` simulates a crash: the final
        log flush — and with it the final HA replication round — is
        skipped, exactly the window where a primary dies between
        appending an entry and shipping it (tests/chaos.py uses this)."""
        if self._heartbeat_thread is not None:
            self._heartbeat_stop.set()
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_thread = None
        if self._channel_server is not None:
            self._channel_server.stop()
            self._channel_server = None
        if self._worker_pool is not None:
            # In-flight statements finish on their worker; new submits
            # are refused (the mux paths tolerate that during shutdown).
            self._worker_pool.shutdown(wait=False)
            self._worker_pool = None
        self.scheduler.close()
        # Make the durable log safe against the process dying right after
        # (a controller restarted on the same log_dir resumes at this
        # index) and release the segment file handle — a later start()
        # reopens it lazily on the next append.
        if flush:
            try:
                self.recovery_log.flush()
            except DriverError:
                # A dying HA primary may fail its final replication
                # round (peers gone, quorum lost); shutdown proceeds.
                pass
        self.recovery_log.close()

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_stop.wait(self.config.heartbeat_interval):
            try:
                self.heartbeat()
            except Exception as exc:  # noqa: BLE001 - detection must outlive any round
                # A detection round must never kill the thread — not even
                # on non-ReproError surprises (disk-full during checkpoint
                # persistence, a buggy pluggable store). Dead backends
                # would otherwise go undetected for the controller's
                # remaining lifetime with no visible signal.
                self.heartbeat_errors += 1
                self.last_heartbeat_error = str(exc)
                continue

    def heartbeat(self) -> Dict[str, Any]:
        """Run one failure-detection round (ping every backend,
        auto-disable dead ones, auto-resync recovered ones)."""
        return self.failure_detector.check()

    @property
    def running(self) -> bool:
        return self._channel_server is not None

    # -- observability ---------------------------------------------------------

    def _admit_statement(self) -> bool:
        """Claim one controller-wide in-flight slot, or refuse.

        Fast path: with no configured limit nothing is counted and no
        lock is taken — the pre-admission hot path is untouched."""
        limit = self.config.max_in_flight_statements
        if limit is None:
            return True
        with self._lock:
            if self._in_flight_statements >= limit:
                return False
            self._in_flight_statements += 1
            if self._in_flight_statements > self._in_flight_peak:
                self._in_flight_peak = self._in_flight_statements
            return True

    def _release_statement(self, count: int = 1) -> None:
        if self.config.max_in_flight_statements is None or count <= 0:
            return
        with self._lock:
            self._in_flight_statements = max(0, self._in_flight_statements - count)

    def _busy_reply(
        self, detail: str, session_id: Optional[str] = None, request_id: Optional[int] = None
    ) -> Dict[str, Any]:
        """A retryable ``server_busy`` ERROR frame: the statement never
        reached a backend, so the driver may retry it with backoff."""
        with self._lock:
            self.server_busy_rejections += 1
        reply = make_error(
            ERROR_SERVER_BUSY,
            f"controller {self.config.controller_id} is saturated ({detail}); "
            "retry with backoff",
        )
        if session_id is not None:
            reply["session_id"] = session_id
        if request_id is not None:
            reply["request_id"] = request_id
        return reply

    def _controller_stats(self) -> Dict[str, Any]:
        with self._lock:
            active_sessions = len(self._sessions)
        return {
            "statements_served": self.statements_served,
            "failed_statements": self.failed_statements,
            "active_sessions": active_sessions,
        }

    def _front_end_stats(self) -> Dict[str, Any]:
        with self._lock:
            mux_channels = len(self._mux_channels)
            in_flight = self._in_flight_statements
            in_flight_peak = self._in_flight_peak
            busy_rejections = self.server_busy_rejections
        pool = self._worker_pool
        return {
            "multiplexing": self.config.multiplexing,
            "worker_pool_size": self.config.worker_pool_size,
            "worker_threads": len(getattr(pool, "_threads", ()) or ()) if pool else 0,
            "mux_channels": mux_channels,
            "reader_threads": (
                self._channel_server.handler_thread_count()
                if self._channel_server is not None
                else 0
            ),
            "group_commit": self.group_commit.stats() if self.group_commit else None,
            "write_batching": self.config.write_batching,
            "max_session_queue_depth": self.config.max_session_queue_depth,
            "max_in_flight_statements": self.config.max_in_flight_statements,
            "in_flight_statements": in_flight,
            "in_flight_peak": in_flight_peak,
            "server_busy_rejections": busy_rejections,
        }

    def _recovery_stats(self) -> Dict[str, Any]:
        return {
            "log": self.recovery_log.stats(),
            "failure_detector": self.failure_detector.stats(),
            "cold_starts": self.scheduler.cold_starts,
            "durable": self.config.log_dir is not None,
            "heartbeat_errors": self.heartbeat_errors,
            "last_heartbeat_error": self.last_heartbeat_error,
        }

    def _obs_stats(self) -> Dict[str, Any]:
        return {
            "tracing": self.config.tracing,
            "traced_statements": self._traced_statements.value,
            "statement_latency": self._statement_latency.snapshot(),
            "slow_queries": self.slow_queries.stats(),
        }

    def stats(self) -> Dict[str, Any]:
        """Controller-level counters plus the scheduling subsystem's stats.

        The sub-dicts are produced by the same callables the metrics
        registry runs as collectors, so this view and
        :meth:`metrics_snapshot` can never drift apart."""
        scheduler_stats = self.scheduler.stats()
        stats = {
            "controller_id": self.config.controller_id,
            "front_end": self._front_end_stats(),
            # Same object as scheduler["placement"] — surfaced top-level
            # for operators, computed once.
            "placement": scheduler_stats["placement"],
            "scheduler": scheduler_stats,
            "recovery": self._recovery_stats(),
            "obs": self._obs_stats(),
        }
        if self.ha_store is not None:
            stats["ha"] = self.ha_store.ha_stats()
        stats.update(self._controller_stats())
        return stats

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The unified registry snapshot: instruments plus every
        registered subsystem's stats tree."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """The registry flattened to Prometheus text exposition format."""
        return render_prometheus(self.metrics.flattened())

    def metrics_json(self) -> str:
        """The registry snapshot as stable-key-order JSON."""
        return render_json(self.metrics_snapshot())

    # -- tracing ---------------------------------------------------------------

    def _start_trace(self, message: Optional[Dict[str, Any]] = None) -> Optional[Trace]:
        """A Trace for one statement, or None when tracing is off.

        Honours the client's ``trace_id`` when the EXECUTE carried one
        (so driver- and server-side records correlate) and marks the
        trace ``wire_requested`` so the reply carries the spans back;
        server-initiated traces feed only the histogram/slow log and
        leave the reply frame untouched."""
        if not self.config.tracing:
            return None
        trace_id = message.get("trace_id") if message is not None else None
        if not isinstance(trace_id, str) or not trace_id:
            trace_id = None
        return Trace(trace_id=trace_id, wire_requested=trace_id is not None)

    def _finish_trace(
        self, trace: Optional[Trace], sql: str, reply: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Seal a statement's trace: histogram + slow-query log, and the
        span list onto the reply frame iff the client asked for it."""
        if trace is None:
            return reply
        total = trace.finish()
        self._traced_statements.inc()
        self._statement_latency.observe(total)
        # stage_seconds is passed as a callable: the slow log only
        # evaluates it for statements that actually make the table.
        self.slow_queries.record(
            sql,
            total,
            stages=trace.stage_seconds,
            trace_id=trace.trace_id,
            **trace.attrs,
        )
        if trace.wire_requested:
            # Pre-serialised: one flat string through the frame codec
            # instead of a per-span tree walk (see Trace.to_wire_json).
            attach_trace(reply, trace.to_wire_json())
        return reply

    # -- backends ----------------------------------------------------------------

    def add_backend(self, backend: Backend) -> None:
        self.scheduler.add_backend(backend)

    def backends(self) -> List[Backend]:
        return self.scheduler.backends()

    def backend(self, name: str) -> Backend:
        for candidate in self.scheduler.backends():
            if candidate.name == name:
                return candidate
        raise DriverError(f"unknown backend {name!r}")

    def disable_backend(self, name: str) -> int:
        """Disable a backend around a consistent checkpoint; returns the
        checkpoint index it will resync from.

        Clears any failure-detector claim on the backend: an explicit
        disable is operator intent, and the detector must not auto-resync
        the backend behind the operator's back when it answers pings."""
        checkpoint = self.scheduler.checkpoint_and_disable(self.backend(name))
        self.failure_detector.forget(name)
        return checkpoint

    def enable_backend(self, name: str) -> int:
        """Re-enable a backend, replaying missed writes; returns how many
        log entries were replayed.

        Refused while a transaction is open, and atomic with respect to
        concurrent writes (see RequestScheduler.resync_and_enable). When
        log compaction already truncated the backend's replay range, the
        resync falls back to a dump-based cold start from a healthy
        sibling. The query cache is flushed so no entry cached while the
        backend was out of rotation can be served stale."""
        replayed = self.scheduler.resync_and_enable(self.backend(name), dumper=DatabaseDumper())
        self.failure_detector.forget(name)
        return replayed

    # -- placement (RAIDb level) ------------------------------------------------

    def set_placement(self, placement: Any) -> Dict[str, Any]:
        """Swap the table-placement map (spec string like ``hash:2``, a
        policy, or a prebuilt :class:`PlacementMap`); returns the new
        placement stats. Placement moves no data — set it before the
        governed tables exist, or cold-start the affected replicas."""
        return self.scheduler.set_placement(placement).stats()

    @property
    def placement(self) -> PlacementMap:
        return self.scheduler.placement

    # -- dumps and cold start ---------------------------------------------------

    def dump_database(
        self,
        checkpoint_name: Optional[str] = None,
        tables: Optional[List[str]] = None,
    ) -> DatabaseDump:
        """Snapshot one healthy backend, consistent with the log head.

        The snapshot's position is pinned under a named checkpoint
        (``dump-<index>`` by default) so compaction keeps the tail a
        consumer will replay; release it with :meth:`release_checkpoint`
        once every consumer has cold-started. ``tables`` restricts the
        snapshot to a subset (spelled any way the classifier normalises —
        ``Users``, ``public.users``...), which is how an operator ships a
        partial replica just the tables it will host."""
        table_filter = None
        if tables is not None:
            wanted = {normalize_table_name(table) for table in tables}
            table_filter = lambda qualified: normalize_table_name(qualified) in wanted  # noqa: E731
        return self.scheduler.create_dump(
            checkpoint_name=checkpoint_name, table_filter=table_filter
        )

    def add_backend_from_dump(
        self, backend: Backend, dump: DatabaseDump, release_checkpoint: bool = True
    ) -> int:
        """Bring a brand-new backend online from ``dump`` + tail replay.

        The dump's rows are restored outside the write path (the backend
        is not in the rotation yet, so writes keep flowing), then the log
        tail after the dump's checkpoint is replayed and the backend
        enabled atomically with the write path. Returns the number of
        tail entries replayed. ``release_checkpoint=False`` keeps the
        dump's pinned position for further backends started off the same
        snapshot."""
        backend.initialize_from_dump(dump)
        self.scheduler.add_backend(backend)
        replayed = self.scheduler.resync_and_enable(backend, dumper=DatabaseDumper())
        if release_checkpoint and dump.checkpoint_name:
            self.recovery_log.release_checkpoint(dump.checkpoint_name)
        return replayed

    def provision_backend(self, backend: Backend) -> int:
        """One-call cold start: dump a healthy sibling into ``backend``
        and add it to the rotation, all atomically with the write path.
        Returns the number of restore statements executed."""
        return self.scheduler.bootstrap_backend(backend, DatabaseDumper())

    def compact_recovery_log(self) -> int:
        """Truncate log entries no live checkpoint still pins; returns
        how many entries were dropped."""
        return self.recovery_log.compact()

    def release_checkpoint(self, name: str) -> bool:
        return self.recovery_log.release_checkpoint(name)

    def disable_backend_cluster_wide(self, name: str) -> int:
        """Disable ``name`` on this controller and every peer.

        Each controller records its own checkpoint against its own recovery
        log; on re-enable each controller replays the writes *it* routed
        while the backend was disabled.
        """
        checkpoint = self.disable_backend(name)
        self._broadcast_group("disable_backend", {"backend": name})
        return checkpoint

    def enable_backend_cluster_wide(self, name: str) -> int:
        """Re-enable ``name`` everywhere; returns the local replay count.

        Raises if a reachable peer *refused* the enable (e.g. its
        open-transaction gate), so the backend is not silently left
        disabled there; unreachable peers keep the best-effort group
        semantics."""
        replayed = self.enable_backend(name)
        _, refusals = self._broadcast_group("enable_backend", {"backend": name})
        if refusals:
            raise DriverError(
                f"backend {name!r} re-enabled locally but refused by peers: "
                + "; ".join(refusals)
            )
        return replayed

    # -- extensions (embedded Drivolution server) -------------------------------------

    def register_extension(self, message_prefix: str, handler: ExtensionHandler) -> None:
        self._extensions[message_prefix] = handler

    def embed_drivolution(self, server: DrivolutionServer) -> None:
        """Embed a Drivolution server: its protocol is served on this
        controller's address (Figure 6)."""
        self.drivolution = server
        server.attach_to_database_server(self)

    # -- group communication --------------------------------------------------------------

    def set_peers(self, peers: List[Address]) -> None:
        """Addresses of the other controllers in the group."""
        with self._lock:
            self._peers = [peer for peer in peers if peer != self.address]

    def peers(self) -> List[Address]:
        with self._lock:
            return list(self._peers)

    def install_driver_cluster_wide(
        self,
        package: DriverPackage,
        database: Optional[str] = None,
        lease_time_ms: int = DEFAULT_LEASE_TIME_MS,
        renew_policy: RenewPolicy = RenewPolicy.UPGRADE,
        expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT,
        replicate: bool = True,
    ) -> int:
        """Install a driver in this controller's embedded Drivolution server
        and replicate the installation to every peer controller.

        Returns the local driver_id. Peers apply the same installation to
        their own embedded servers, so clients upgrade regardless of which
        controller they are connected to.
        """
        driver_id = self._install_driver_locally(
            package, database, lease_time_ms, int(renew_policy), int(expiration_policy)
        )
        if replicate:
            payload = {
                "package": package.to_wire(),
                "database": database,
                "lease_time_ms": lease_time_ms,
                "renew_policy": int(renew_policy),
                "expiration_policy": int(expiration_policy),
            }
            self._broadcast_group("install_driver", payload)
        return driver_id

    def _install_driver_locally(
        self,
        package: DriverPackage,
        database: Optional[str],
        lease_time_ms: int,
        renew_policy: int,
        expiration_policy: int,
    ) -> int:
        if self.drivolution is None:
            raise DriverError(f"controller {self.config.controller_id} has no embedded Drivolution server")
        registry = self.drivolution.registry
        driver_id = registry.install_driver(package)
        registry.grant_permission(
            DriverPermission(
                driver_id=driver_id,
                database=database,
                lease_time_in_ms=lease_time_ms,
                renew_policy=RenewPolicy.from_value(renew_policy),
                expiration_policy=ExpirationPolicy.from_value(expiration_policy),
            )
        )
        self.drivolution.notify_update(package.api_name, database)
        return driver_id

    def _broadcast_group(self, operation: str, payload: Dict[str, Any]) -> "Tuple[int, List[str]]":
        """Send a group operation to every peer.

        Returns ``(acknowledged, refusals)``: unreachable peers are
        skipped (best effort), but a reachable peer that answered with an
        error is reported so callers can surface it."""
        acknowledged = 0
        refusals: List[str] = []
        for peer in self.peers():
            try:
                channel = self.network.connect(peer, timeout=2.0)
            except TransportError:
                continue
            try:
                channel.send(make_group(operation, payload, origin=self.config.controller_id))
                reply = channel.recv(timeout=5.0)
                if reply.get("type") == "seq_group_ack":
                    acknowledged += 1
                elif reply.get("type") == ClusterMessageType.ERROR:
                    refusals.append(f"{peer}: {reply.get('message', 'unknown error')}")
            except TransportError:
                continue
            finally:
                channel.close()
        return acknowledged, refusals

    def _handle_group_message(self, channel: Channel, message: Dict[str, Any]) -> None:
        operation = str(message.get("operation", ""))
        payload = dict(message.get("payload") or {})
        try:
            if operation == "install_driver":
                package = DriverPackage.from_wire(payload.get("package", {}))
                self._install_driver_locally(
                    package,
                    payload.get("database"),
                    int(payload.get("lease_time_ms", DEFAULT_LEASE_TIME_MS)),
                    int(payload.get("renew_policy", int(RenewPolicy.UPGRADE))),
                    int(payload.get("expiration_policy", int(ExpirationPolicy.AFTER_COMMIT))),
                )
            elif operation == "revoke_driver":
                if self.drivolution is not None:
                    self.drivolution.registry.revoke_permissions_for_driver(int(payload["driver_id"]))
            elif operation == "disable_backend":
                self.disable_backend(str(payload["backend"]))
            elif operation == "enable_backend":
                self.enable_backend(str(payload["backend"]))
            else:
                channel.send(make_error("bad_group_operation", f"unknown operation {operation!r}"))
                return
        except ReproError as exc:
            channel.send(make_error("group_operation_failed", str(exc)))
            return
        channel.send({"type": "seq_group_ack", "controller_id": self.config.controller_id})

    # -- controller HA (docs/ha.md) ---------------------------------------------------------

    def promote(self, floor_epoch: int = 0) -> int:
        """Promote this controller to HA primary at a fresh epoch
        (bumped past ``floor_epoch``, the highest epoch observed in
        election probes); returns the new epoch.

        Besides the role flip, promotion seeds replay dedup: every
        retained log entry was broadcast to the shared replica databases
        by the old primary *before* it was replicated here, so this
        node's Backend views mark those per-table sequences applied —
        a post-promotion resync replays the tail idempotently instead of
        double-applying writes the databases already hold."""
        if self.ha_store is None:
            raise DriverError(
                f"controller {self.config.controller_id} has no HA peers configured"
            )
        epoch = self.ha_store.promote(floor_epoch)
        entries = self.recovery_log.entries_after(self.recovery_log.first_index - 1)
        for backend in self.scheduler.backends():
            if backend.enabled:
                for entry in entries:
                    if entry.table_seqs:
                        backend.advance_checkpoint(entry.index, entry.table_seqs)
        # Push the new epoch out so surviving peers adopt it (and the
        # deposed primary, if reachable, demotes itself immediately).
        self.ha_store.announce()
        return epoch

    def _serve_replication_channel(self, channel: Channel, first: Dict[str, Any]) -> None:
        """Serve a primary's persistent replication channel: apply each
        REPLICATE frame, ack, repeat until the channel dies."""
        message = first
        while True:
            if self.ha_store is None:
                reply = make_error(
                    "ha_disabled",
                    f"controller {self.config.controller_id} has no HA peers configured",
                )
            else:
                reply, applied = self.ha_store.apply_replicate(message)
                if applied:
                    # Replicated entries bypass RecoveryLog.append, so the
                    # facade's per-table sequence counters must be advanced
                    # here — otherwise a later promotion would hand out
                    # colliding sequences.
                    self.recovery_log.observe_replicated(applied)
                snapshot = message.get("checkpoints")
                if (
                    snapshot is not None
                    and reply.get("type") == ClusterMessageType.REPLICATE_OK
                ):
                    self.recovery_log.checkpoints.restore_snapshot(snapshot)
            try:
                channel.send(reply)
                message = channel.recv(timeout=None)
            except TransportError:
                return
            if message is None or message.get("type") != ClusterMessageType.REPLICATE:
                return

    def _handle_ha_status(self, channel: Channel) -> None:
        """Answer one election probe."""
        if self.ha_store is None:
            reply: Dict[str, Any] = make_error(
                "ha_disabled",
                f"controller {self.config.controller_id} has no HA peers configured",
            )
        else:
            status = self.ha_store.status()
            reply = make_ha_status_ok(
                status["node_id"],
                status["address"],
                status["epoch"],
                status["role"],
                status["last_index"],
            )
        try:
            channel.send(reply)
        except TransportError:
            pass

    def _probe_ha_peer(self, address: Address) -> Optional[Dict[str, Any]]:
        """One HA_STATUS round trip; None when the peer is unreachable."""
        try:
            channel = self.network.connect(address, timeout=self.config.ha_probe_timeout_s)
        except TransportError:
            return None
        try:
            channel.send(make_ha_status(self.config.controller_id))
            reply = channel.recv(timeout=self.config.ha_probe_timeout_s)
        except TransportError:
            return None
        finally:
            try:
                channel.close()
            except TransportError:
                pass
        if not isinstance(reply, dict) or reply.get("type") != ClusterMessageType.HA_STATUS_OK:
            return None
        return reply

    def _maybe_promote(self) -> bool:
        """Deterministic self-election, run when a write lands on a
        follower: probe every peer, and promote only when (a) no
        reachable peer claims the primaryship at our epoch or newer, and
        (b) a strict cluster majority is reachable (self included) and
        this node wins the (last_index, node_id) tie-break among the
        responders. Every surviving follower computes the same winner
        from the same probes, so at most one promotes. Returns whether
        this node is primary afterwards."""
        store = self.ha_store
        if store is None:
            return False
        if not self._election_lock.acquire(blocking=False):
            # An election is already running on another worker; this
            # statement just bounces with not_primary and the driver
            # retries — by then the election has settled.
            return store.is_primary
        try:
            status = store.status()
            if status["role"] == "primary":
                return True
            responders = [status]
            live_primary: Optional[Dict[str, Any]] = None
            for address in store.peer_addresses():
                peer_status = self._probe_ha_peer(address)
                if peer_status is None:
                    continue
                responders.append(
                    {
                        "node_id": str(peer_status["node_id"]),
                        "address": str(peer_status["address"]),
                        "epoch": int(peer_status["epoch"]),
                        "role": str(peer_status["role"]),
                        "last_index": int(peer_status["last_index"]),
                    }
                )
                candidate = responders[-1]
                if candidate["role"] == "primary" and candidate["epoch"] >= status["epoch"]:
                    if live_primary is None or candidate["epoch"] > live_primary["epoch"]:
                        live_primary = candidate
            if live_primary is not None:
                # The primary is alive (we were probed by a stale hint or
                # a client raced a settled election): just point at it.
                store.set_primary_hint(live_primary["address"])
                return False
            if len(responders) < store.required_acks:
                # Can't prove a majority side of any partition; promoting
                # here could split the brain. Stay a follower.
                return False
            winner = max(responders, key=lambda s: (s["last_index"], s["node_id"]))
            if winner["node_id"] != status["node_id"]:
                store.set_primary_hint(winner["address"])
                return False
            # Fold every epoch the probes reported into the promotion:
            # the new epoch must land past values persisted anywhere in
            # the responder set, not just past this node's own (which may
            # lag if it missed announce frames).
            self.promote(floor_epoch=max(r["epoch"] for r in responders))
            return True
        finally:
            self._election_lock.release()

    def _ha_gate_write(self) -> Optional[Dict[str, Any]]:
        """Refuse a write on an HA follower with a retryable
        ``not_primary`` ERROR carrying the primary's address; runs the
        election first so a cluster whose primary just died heals on the
        very write that discovered it."""
        store = self.ha_store
        assert store is not None
        if store.is_primary or self._maybe_promote():
            return None
        reply = make_error(
            ERROR_NOT_PRIMARY,
            f"controller {self.config.controller_id} is an HA follower "
            f"(epoch {store.epoch}); retry on the primary",
        )
        hint = store.primary_hint
        if hint:
            reply["primary_host"] = hint
        return reply

    # -- client connections -----------------------------------------------------------------

    def _handle_channel(self, channel: Channel) -> None:
        try:
            first = channel.recv(timeout=30.0)
        except TransportError:
            return
        message_type = str(first.get("type", ""))
        for prefix, handler in self._extensions.items():
            if message_type.startswith(prefix):
                handler(channel, first)
                return
        if message_type == ClusterMessageType.GROUP:
            self._handle_group_message(channel, first)
            return
        if message_type == ClusterMessageType.REPLICATE:
            self._serve_replication_channel(channel, first)
            return
        if message_type == ClusterMessageType.HA_STATUS:
            self._handle_ha_status(channel)
            return
        if message_type != ClusterMessageType.CONNECT:
            channel.send(make_error("bad_handshake", f"expected seq_connect, got {message_type!r}"))
            return
        self._serve_client(channel, first)

    def _serve_client(self, channel: Channel, connect: Dict[str, Any]) -> None:
        client_version = connect.get("protocol_version")
        if not isinstance(client_version, int) or client_version < self.config.min_client_protocol_version:
            channel.send(
                make_error(
                    "protocol_mismatch",
                    f"driver protocol version {client_version!r} too old for controller "
                    f"{self.config.controller_id} (minimum {self.config.min_client_protocol_version})",
                )
            )
            return
        if client_version > self.config.protocol_version:
            # Drivers are backward compatible: a newer driver downgrades to
            # the controller's version, so this still succeeds.
            client_version = self.config.protocol_version
        virtual_database = str(connect.get("virtual_database", ""))
        if virtual_database != self.config.virtual_database:
            channel.send(
                make_error("unknown_database", f"virtual database {virtual_database!r} not hosted here")
            )
            return
        grant_multiplexing = bool(
            connect.get("multiplex")
            and self.config.multiplexing
            and client_version >= MULTIPLEX_MIN_VERSION
            and self._worker_pool is not None
        )
        grant_tracing = bool(
            connect.get("trace")
            and self.config.tracing
            and client_version >= TRACE_MIN_VERSION
        )
        if grant_multiplexing:
            # No base session: logical sessions arrive via SESSION_OPEN.
            # The handshake's session_id names the channel for tracing.
            channel.send(
                make_connect_ok(
                    self.config.controller_id,
                    client_version,
                    uuid.uuid4().hex,
                    multiplexing=True,
                    tracing=grant_tracing,
                )
            )
            self._serve_mux_channel(channel)
            return
        session_id = uuid.uuid4().hex
        session = SessionContext(session_id=session_id)
        with self._lock:
            self._sessions[session_id] = session
        try:
            channel.send(
                make_connect_ok(
                    self.config.controller_id,
                    client_version,
                    session_id,
                    tracing=grant_tracing,
                )
            )
            self._serve_session(channel, session)
        finally:
            with self._lock:
                self._sessions.pop(session_id, None)
            if session.in_transaction:
                # The client vanished mid-transaction. Roll it back so the
                # backends' shared server sessions are released and the
                # scheduler's open-transaction accounting (which gates the
                # query-cache dirty-table flush) is not pinned forever.
                try:
                    self.scheduler.execute(
                        "ROLLBACK", in_transaction=True, session_id=session.session_id
                    )
                except (SchedulerError, DriverError):
                    pass

    def _execute_for_session(
        self,
        session: SessionContext,
        sql: str,
        params: Dict[str, Any],
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        """Run one statement for a session and build the reply frame.

        Shared by the dedicated (v2) loop and the multiplexed workers;
        the caller guarantees one session's statements never run
        concurrently (the v2 loop is sequential, the mux path drains a
        per-session FIFO), so SessionContext needs no lock. The
        controller-wide counters are shared across workers and bump
        under ``_lock``."""
        if trace is None:
            statement = classify(sql)
        else:
            with trace.span("classify"):
                statement = classify(sql)
            trace.annotate(command=statement.command, session=session.session_id)
        if self.ha_store is not None and not (statement.is_read and not session.in_transaction):
            # HA: only the primary accepts writes (reads outside a
            # transaction are served by any node). The retryable
            # not_primary bounce carries the primary's address, so the
            # driver's failover lands on the right sibling first try.
            refusal = self._ha_gate_write()
            if refusal is not None:
                return refusal
        if (
            self.scheduler.resync_in_progress
            and self.peers()
            and not (statement.is_read and not session.in_transaction)
        ):
            # A resync replay holds the write path, possibly for a long
            # log tail. Instead of queueing the write behind it, tell
            # the driver — it retries transparently against a sibling
            # controller (reads keep being served locally). Without
            # peers there is nowhere to send the client: writes simply
            # queue on the write lock until the replay finishes.
            return make_error(
                "controller_recovering",
                f"controller {self.config.controller_id} is replaying its "
                "recovery log; retry on another controller",
            )
        try:
            columns, rows, rowcount = self.scheduler.execute(
                sql,
                params,
                in_transaction=session.in_transaction,
                session_id=session.session_id,
                trace=trace,
            )
        except (SchedulerError, DriverError) as exc:
            session.failed += 1
            with self._lock:
                self.failed_statements += 1
            return make_error("execution_failed", str(exc))
        session.observe(statement.command, statement.is_transaction_control)
        session.statements += 1
        with self._lock:
            self.statements_served += 1
        return make_result(columns, rows, rowcount)

    def _serve_session(self, channel: Channel, session: SessionContext) -> None:
        while True:
            try:
                message = channel.recv(timeout=None)
            except TransportError:
                return
            message_type = message.get("type")
            if message_type == ClusterMessageType.CLOSE:
                return
            if message_type == ClusterMessageType.PING:
                channel.send({"type": ClusterMessageType.PONG})
                continue
            if message_type != ClusterMessageType.EXECUTE:
                channel.send(make_error("bad_message", f"unexpected message {message_type!r}"))
                continue
            sql = str(message.get("sql", ""))
            params = dict(message.get("params") or {})
            # A dedicated session has no queue (EXECUTE/RESULT alternate
            # strictly), so only the controller-wide bound applies here.
            # An open transaction bypasses admission: its work was
            # admitted at BEGIN, it may hold lock scopes other admitted
            # statements are blocked on, and refusing its COMMIT while
            # those blocked statements fill every slot would deadlock
            # the controller against itself.
            in_transaction = session.in_transaction
            if not in_transaction and not self._admit_statement():
                reply = self._busy_reply(
                    f"max_in_flight_statements={self.config.max_in_flight_statements}"
                )
            else:
                # Rejected statements never ran, so they are not traced;
                # everything that reaches the scheduler is.
                trace = self._start_trace(message)
                try:
                    reply = self._execute_for_session(session, sql, params, trace)
                finally:
                    if not in_transaction:
                        self._release_statement()
                reply = self._finish_trace(trace, sql, reply)
            try:
                channel.send(reply)
            except TransportError:
                return

    # -- multiplexed front end (protocol v3, docs/wire.md) ---------------------

    def _serve_mux_channel(self, channel: Channel) -> None:
        """Reader loop of one multiplexed channel: the only thread that
        receives from it. Statements are dispatched to the shared worker
        pool through per-session FIFOs; this thread never blocks on the
        scheduler, so one slow statement cannot stall the channel's
        other sessions."""
        state = _MuxChannelState(channel)
        with self._lock:
            self._mux_channels.add(state)
        try:
            while True:
                try:
                    message = channel.recv(timeout=None)
                except TransportError:
                    return
                message_type = str(message.get("type", ""))
                if message_type == ClusterMessageType.CLOSE:
                    return
                if message_type == ClusterMessageType.PING:
                    if not self._mux_send(state, {"type": ClusterMessageType.PONG}):
                        return
                    continue
                if message_type == ClusterMessageType.SESSION_OPEN:
                    self._mux_open_session(state, message)
                    continue
                if message_type == ClusterMessageType.SESSION_CLOSE:
                    self._mux_close_session(state, message)
                    continue
                if message_type == ClusterMessageType.EXECUTE:
                    self._mux_execute(state, message)
                    continue
                self._mux_send(
                    state, make_error("bad_message", f"unexpected message {message_type!r}")
                )
        finally:
            with self._lock:
                self._mux_channels.discard(state)
            # The channel died (or closed): every logical session on it
            # ends, mirroring the dedicated path's abandoned-transaction
            # rollback.
            with state.lock:
                leftovers = list(state.sessions.values())
            for msession in leftovers:
                self._finish_mux_session(state, msession)

    def _mux_send(self, state: _MuxChannelState, message: Dict[str, Any]) -> bool:
        with state.send_lock:
            try:
                state.channel.send(message)
                return True
            except TransportError:
                # Reply undeliverable: the reader loop observes the dead
                # channel on its next recv and tears the sessions down.
                return False

    def _mux_open_session(self, state: _MuxChannelState, message: Dict[str, Any]) -> None:
        try:
            session_id, request_id = correlate(message)
        except ClusterWireError as exc:
            self._mux_send(state, make_error("bad_correlation", str(exc)))
            return
        session = SessionContext(session_id=session_id)
        msession = _MuxSession(session)
        with state.lock:
            if session_id in state.sessions:
                reply = make_error("session_exists", f"session {session_id!r} already open")
                reply["session_id"] = session_id
                reply["request_id"] = request_id
                self._mux_send(state, reply)
                return
            state.sessions[session_id] = msession
        with self._lock:
            self._sessions[session_id] = session
        self._mux_send(state, make_session_open_ok(session_id, request_id))

    def _mux_close_session(self, state: _MuxChannelState, message: Dict[str, Any]) -> None:
        try:
            session_id, _ = correlate(message, require_request_id=False)
        except ClusterWireError as exc:
            self._mux_send(state, make_error("bad_correlation", str(exc)))
            return
        with state.lock:
            msession = state.sessions.get(session_id)
        if msession is None:
            return  # idempotent: already closed (or never opened)
        # Through the session FIFO, so the close orders after every
        # pipelined statement the client already fired.
        self._mux_enqueue(state, msession, _CLOSE_SESSION)

    def _mux_execute(self, state: _MuxChannelState, message: Dict[str, Any]) -> None:
        try:
            session_id, request_id = correlate(message)
        except ClusterWireError as exc:
            # Reply promptly instead of dispatching garbage to a worker
            # (an unmatchable reply would hang the client's request
            # forever and the worker's effort would be wasted).
            self._mux_send(state, make_error("bad_correlation", str(exc)))
            return
        with state.lock:
            msession = state.sessions.get(session_id)
        if msession is None or msession.closed:
            reply = make_error("unknown_session", f"no open session {session_id!r} on this channel")
            reply["session_id"] = session_id
            reply["request_id"] = request_id
            self._mux_send(state, reply)
            return
        sql = str(message.get("sql", ""))
        params = dict(message.get("params") or {})
        # Admission control. The depth check-then-enqueue is race-free:
        # this reader thread is the session queue's only producer, and
        # workers only ever shrink it.
        depth_limit = self.config.max_session_queue_depth
        if depth_limit is not None:
            with state.lock:
                depth = len(msession.queue)
            if depth >= depth_limit:
                self._mux_send(
                    state,
                    self._busy_reply(
                        f"session queue depth at max_session_queue_depth={depth_limit}",
                        session_id,
                        request_id,
                    ),
                )
                return
        # An open transaction bypasses the in-flight bound: its work was
        # admitted at BEGIN, it may hold lock scopes other admitted
        # statements are blocked on, and refusing its COMMIT while those
        # blocked statements fill every slot would deadlock the
        # controller against itself. (The depth bound above still
        # applies — it caps per-session memory, not concurrency.)
        holds_slot = not msession.context.in_transaction
        if holds_slot and not self._admit_statement():
            self._mux_send(
                state,
                self._busy_reply(
                    f"max_in_flight_statements={self.config.max_in_flight_statements}",
                    session_id,
                    request_id,
                ),
            )
            return
        # The queue-wait span opens on this reader thread and closes on
        # the worker that dequeues the item — exactly the time the
        # statement sat in the session FIFO behind its predecessors.
        trace = self._start_trace(message)
        if trace is not None:
            # No session attr: _execute_for_session annotates the trace
            # with the session id, so the wire span stays a bare record.
            trace.begin("queue")
        if not self._mux_enqueue(state, msession, (request_id, sql, params, holds_slot, trace)):
            # The session closed between the lookup and the enqueue (its
            # close rode the FIFO); the admitted slot must not leak.
            if holds_slot:
                self._release_statement()

    def _mux_enqueue(self, state: _MuxChannelState, msession: _MuxSession, item: Any) -> bool:
        with state.lock:
            if msession.closed:
                return False
            msession.queue.append(item)
            if msession.scheduled:
                return True
            msession.scheduled = True
        self._mux_submit(state, msession)
        return True

    def _mux_submit(self, state: _MuxChannelState, msession: _MuxSession) -> None:
        pool = self._worker_pool
        try:
            if pool is None:
                raise RuntimeError("controller stopped")
            pool.submit(self._drain_mux_session, state, msession)
        except RuntimeError:
            # Shutting down: drop the work, the channel is about to die.
            with state.lock:
                msession.scheduled = False

    def _drain_mux_session(self, state: _MuxChannelState, msession: _MuxSession) -> None:
        """Run ONE queued item of one session, then yield the worker.

        One item per pool task keeps the pool fair under pipelining: a
        session with 100 queued statements interleaves with its channel
        peers instead of monopolising a worker until drained."""
        with state.lock:
            if not msession.queue:
                msession.scheduled = False
                return
            item = msession.queue.popleft()
        try:
            if item is _CLOSE_SESSION:
                self._finish_mux_session(state, msession)
            else:
                request_id, sql, params, holds_slot, trace = item
                if trace is not None:
                    trace.end("queue")
                try:
                    reply = self._execute_for_session(msession.context, sql, params, trace)
                except Exception as exc:  # noqa: BLE001 - a worker must never die silently
                    reply = make_error("internal_error", str(exc))
                finally:
                    # The statement's admission slot frees whether it
                    # succeeded, failed, or raised.
                    if holds_slot:
                        self._release_statement()
                reply = self._finish_trace(trace, sql, reply)
                reply["session_id"] = msession.context.session_id
                reply["request_id"] = request_id
                self._mux_send(state, reply)
        finally:
            with state.lock:
                if msession.queue and not msession.closed:
                    # Keep ``scheduled`` held by the next task.
                    resubmit = True
                else:
                    msession.scheduled = False
                    resubmit = False
            if resubmit:
                self._mux_submit(state, msession)

    def _finish_mux_session(self, state: _MuxChannelState, msession: _MuxSession) -> None:
        with state.lock:
            if msession.closed:
                return
            msession.closed = True
            state.sessions.pop(msession.context.session_id, None)
            # Statements still queued behind the close (or behind a dead
            # channel) will never run; their admission slots must free.
            # (In-transaction statements never held one — see
            # ``holds_slot`` in :meth:`_mux_execute`.)
            abandoned = sum(
                1
                for item in msession.queue
                if item is not _CLOSE_SESSION and item[3]
            )
            msession.queue.clear()
        self._release_statement(abandoned)
        with self._lock:
            self._sessions.pop(msession.context.session_id, None)
        if msession.context.in_transaction:
            # Same contract as a dedicated session's disconnect: an
            # abandoned transaction must not pin the scheduler's
            # accounting or the backends' shared server sessions.
            try:
                self.scheduler.execute(
                    "ROLLBACK", in_transaction=True, session_id=msession.context.session_id
                )
            except (SchedulerError, DriverError):
                pass


class ControllerGroup:
    """Convenience wrapper wiring several controllers into one group."""

    def __init__(self, controllers: List[Controller]) -> None:
        if not controllers:
            raise DriverError("a controller group needs at least one controller")
        self.controllers = list(controllers)
        addresses = [controller.address for controller in controllers]
        for controller in controllers:
            controller.set_peers(addresses)

    def start(self) -> "ControllerGroup":
        for controller in self.controllers:
            controller.start()
        return self

    def stop(self) -> None:
        for controller in self.controllers:
            controller.stop()

    def addresses(self) -> List[Address]:
        return [controller.address for controller in self.controllers]

    def client_url(self, network_name: str = "default") -> str:
        """A multi-controller Sequoia URL, e.g.
        ``sequoia://controller1,controller2/vdb``."""
        hosts = ",".join(self.addresses())
        database = self.controllers[0].config.virtual_database
        return f"sequoia://{hosts}/{database}?network={network_name}"
