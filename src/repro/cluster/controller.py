"""The cluster controller (Sequoia's central component).

A controller exposes one *virtual database* to clients over the cluster
wire protocol and maps every statement onto the replicated backends via
the request scheduler. It supports:

- protocol-version checking at connection time (drivers may be older than
  the controller, never newer),
- disabling a backend around a consistent checkpoint and re-enabling it
  with a resync from the recovery log,
- hosting extensions on its listener — this is how the embedded
  Drivolution server of the hybrid deployment (Figure 6) answers
  bootloader requests on the controller's own address,
- group communication with peer controllers, used to replicate Drivolution
  driver installations so that "all client applications can be upgraded no
  matter which server they are connected to".
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.backend import Backend
from repro.cluster.recovery_log import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.cluster.wire import (
    CLUSTER_PROTOCOL_VERSION,
    ClusterMessageType,
    make_connect_ok,
    make_error,
    make_group,
    make_result,
)
from repro.core.constants import DEFAULT_LEASE_TIME_MS, ExpirationPolicy, RenewPolicy
from repro.core.package import DriverPackage
from repro.core.registry import DriverPermission
from repro.core.server import DrivolutionServer
from repro.errors import DriverError, ReproError, TransportError
from repro.netsim.transport import Address, Channel, ChannelServer, Network

#: Extension handlers receive (channel, first_message), as for the database server.
ExtensionHandler = Callable[[Channel, Dict[str, Any]], None]


@dataclass
class ControllerConfig:
    """Static configuration of one controller."""

    controller_id: str = field(default_factory=lambda: f"controller-{uuid.uuid4().hex[:6]}")
    virtual_database: str = "vdb"
    protocol_version: int = CLUSTER_PROTOCOL_VERSION
    #: Oldest driver protocol version this controller still accepts.
    min_client_protocol_version: int = 1


class Controller:
    """One Sequoia-like controller."""

    def __init__(
        self,
        config: ControllerConfig,
        network: Network,
        address: Address,
        backends: Optional[List[Backend]] = None,
    ) -> None:
        self.config = config
        self.network = network
        self.address = address
        self.recovery_log = RecoveryLog()
        self.scheduler = RequestScheduler(backends or [], self.recovery_log)
        self._extensions: Dict[str, ExtensionHandler] = {}
        self._channel_server: Optional[ChannelServer] = None
        self._peers: List[Address] = []
        self._lock = threading.Lock()
        self.drivolution: Optional[DrivolutionServer] = None
        #: Statements served to clients (observability for experiments).
        self.statements_served = 0
        self.failed_statements = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Controller":
        if self._channel_server is not None:
            return self
        listener = self.network.listen(self.address)
        self._channel_server = ChannelServer(
            listener, self._handle_channel, name=self.config.controller_id
        )
        self._channel_server.start()
        return self

    def stop(self) -> None:
        if self._channel_server is not None:
            self._channel_server.stop()
            self._channel_server = None

    @property
    def running(self) -> bool:
        return self._channel_server is not None

    # -- backends ----------------------------------------------------------------

    def add_backend(self, backend: Backend) -> None:
        self.scheduler.add_backend(backend)

    def backends(self) -> List[Backend]:
        return self.scheduler.backends()

    def backend(self, name: str) -> Backend:
        for candidate in self.scheduler.backends():
            if candidate.name == name:
                return candidate
        raise DriverError(f"unknown backend {name!r}")

    def disable_backend(self, name: str) -> int:
        """Disable a backend around a consistent checkpoint; returns the
        checkpoint index it will resync from."""
        backend = self.backend(name)
        checkpoint = self.recovery_log.last_index
        backend.disable(checkpoint)
        return checkpoint

    def enable_backend(self, name: str) -> int:
        """Re-enable a backend, replaying missed writes; returns how many
        log entries were replayed."""
        backend = self.backend(name)
        entries = self.recovery_log.entries_after(backend.checkpoint_index)
        return backend.resync(entries)

    def disable_backend_cluster_wide(self, name: str) -> int:
        """Disable ``name`` on this controller and every peer.

        Each controller records its own checkpoint against its own recovery
        log; on re-enable each controller replays the writes *it* routed
        while the backend was disabled.
        """
        checkpoint = self.disable_backend(name)
        self._broadcast_group("disable_backend", {"backend": name})
        return checkpoint

    def enable_backend_cluster_wide(self, name: str) -> int:
        """Re-enable ``name`` everywhere; returns the local replay count."""
        replayed = self.enable_backend(name)
        self._broadcast_group("enable_backend", {"backend": name})
        return replayed

    # -- extensions (embedded Drivolution server) -------------------------------------

    def register_extension(self, message_prefix: str, handler: ExtensionHandler) -> None:
        self._extensions[message_prefix] = handler

    def embed_drivolution(self, server: DrivolutionServer) -> None:
        """Embed a Drivolution server: its protocol is served on this
        controller's address (Figure 6)."""
        self.drivolution = server
        server.attach_to_database_server(self)

    # -- group communication --------------------------------------------------------------

    def set_peers(self, peers: List[Address]) -> None:
        """Addresses of the other controllers in the group."""
        with self._lock:
            self._peers = [peer for peer in peers if peer != self.address]

    def peers(self) -> List[Address]:
        with self._lock:
            return list(self._peers)

    def install_driver_cluster_wide(
        self,
        package: DriverPackage,
        database: Optional[str] = None,
        lease_time_ms: int = DEFAULT_LEASE_TIME_MS,
        renew_policy: RenewPolicy = RenewPolicy.UPGRADE,
        expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT,
        replicate: bool = True,
    ) -> int:
        """Install a driver in this controller's embedded Drivolution server
        and replicate the installation to every peer controller.

        Returns the local driver_id. Peers apply the same installation to
        their own embedded servers, so clients upgrade regardless of which
        controller they are connected to.
        """
        driver_id = self._install_driver_locally(
            package, database, lease_time_ms, int(renew_policy), int(expiration_policy)
        )
        if replicate:
            payload = {
                "package": package.to_wire(),
                "database": database,
                "lease_time_ms": lease_time_ms,
                "renew_policy": int(renew_policy),
                "expiration_policy": int(expiration_policy),
            }
            self._broadcast_group("install_driver", payload)
        return driver_id

    def _install_driver_locally(
        self,
        package: DriverPackage,
        database: Optional[str],
        lease_time_ms: int,
        renew_policy: int,
        expiration_policy: int,
    ) -> int:
        if self.drivolution is None:
            raise DriverError(f"controller {self.config.controller_id} has no embedded Drivolution server")
        registry = self.drivolution.registry
        driver_id = registry.install_driver(package)
        registry.grant_permission(
            DriverPermission(
                driver_id=driver_id,
                database=database,
                lease_time_in_ms=lease_time_ms,
                renew_policy=RenewPolicy.from_value(renew_policy),
                expiration_policy=ExpirationPolicy.from_value(expiration_policy),
            )
        )
        self.drivolution.notify_update(package.api_name, database)
        return driver_id

    def _broadcast_group(self, operation: str, payload: Dict[str, Any]) -> int:
        """Send a group operation to every peer; returns how many acknowledged."""
        acknowledged = 0
        for peer in self.peers():
            try:
                channel = self.network.connect(peer, timeout=2.0)
            except TransportError:
                continue
            try:
                channel.send(make_group(operation, payload, origin=self.config.controller_id))
                reply = channel.recv(timeout=5.0)
                if reply.get("type") == "seq_group_ack":
                    acknowledged += 1
            except TransportError:
                continue
            finally:
                channel.close()
        return acknowledged

    def _handle_group_message(self, channel: Channel, message: Dict[str, Any]) -> None:
        operation = str(message.get("operation", ""))
        payload = dict(message.get("payload") or {})
        try:
            if operation == "install_driver":
                package = DriverPackage.from_wire(payload.get("package", {}))
                self._install_driver_locally(
                    package,
                    payload.get("database"),
                    int(payload.get("lease_time_ms", DEFAULT_LEASE_TIME_MS)),
                    int(payload.get("renew_policy", int(RenewPolicy.UPGRADE))),
                    int(payload.get("expiration_policy", int(ExpirationPolicy.AFTER_COMMIT))),
                )
            elif operation == "revoke_driver":
                if self.drivolution is not None:
                    self.drivolution.registry.revoke_permissions_for_driver(int(payload["driver_id"]))
            elif operation == "disable_backend":
                self.disable_backend(str(payload["backend"]))
            elif operation == "enable_backend":
                self.enable_backend(str(payload["backend"]))
            else:
                channel.send(make_error("bad_group_operation", f"unknown operation {operation!r}"))
                return
        except ReproError as exc:
            channel.send(make_error("group_operation_failed", str(exc)))
            return
        channel.send({"type": "seq_group_ack", "controller_id": self.config.controller_id})

    # -- client connections -----------------------------------------------------------------

    def _handle_channel(self, channel: Channel) -> None:
        try:
            first = channel.recv(timeout=30.0)
        except TransportError:
            return
        message_type = str(first.get("type", ""))
        for prefix, handler in self._extensions.items():
            if message_type.startswith(prefix):
                handler(channel, first)
                return
        if message_type == ClusterMessageType.GROUP:
            self._handle_group_message(channel, first)
            return
        if message_type != ClusterMessageType.CONNECT:
            channel.send(make_error("bad_handshake", f"expected seq_connect, got {message_type!r}"))
            return
        self._serve_client(channel, first)

    def _serve_client(self, channel: Channel, connect: Dict[str, Any]) -> None:
        client_version = connect.get("protocol_version")
        if not isinstance(client_version, int) or client_version < self.config.min_client_protocol_version:
            channel.send(
                make_error(
                    "protocol_mismatch",
                    f"driver protocol version {client_version!r} too old for controller "
                    f"{self.config.controller_id} (minimum {self.config.min_client_protocol_version})",
                )
            )
            return
        if client_version > self.config.protocol_version:
            # Drivers are backward compatible: a newer driver downgrades to
            # the controller's version, so this still succeeds.
            client_version = self.config.protocol_version
        virtual_database = str(connect.get("virtual_database", ""))
        if virtual_database != self.config.virtual_database:
            channel.send(
                make_error("unknown_database", f"virtual database {virtual_database!r} not hosted here")
            )
            return
        session_id = uuid.uuid4().hex
        channel.send(make_connect_ok(self.config.controller_id, client_version, session_id))
        in_transaction = False
        while True:
            try:
                message = channel.recv(timeout=None)
            except TransportError:
                return
            message_type = message.get("type")
            if message_type == ClusterMessageType.CLOSE:
                return
            if message_type == ClusterMessageType.PING:
                channel.send({"type": ClusterMessageType.PONG})
                continue
            if message_type != ClusterMessageType.EXECUTE:
                channel.send(make_error("bad_message", f"unexpected message {message_type!r}"))
                continue
            sql = str(message.get("sql", ""))
            params = dict(message.get("params") or {})
            keyword = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
            try:
                columns, rows, rowcount = self.scheduler.execute(
                    sql, params, in_transaction=in_transaction
                )
            except (SchedulerError, DriverError) as exc:
                self.failed_statements += 1
                channel.send(make_error("execution_failed", str(exc)))
                continue
            if keyword in ("BEGIN", "START"):
                in_transaction = True
            elif keyword in ("COMMIT", "ROLLBACK"):
                in_transaction = False
            self.statements_served += 1
            try:
                channel.send(make_result(columns, rows, rowcount))
            except TransportError:
                return


class ControllerGroup:
    """Convenience wrapper wiring several controllers into one group."""

    def __init__(self, controllers: List[Controller]) -> None:
        if not controllers:
            raise DriverError("a controller group needs at least one controller")
        self.controllers = list(controllers)
        addresses = [controller.address for controller in controllers]
        for controller in controllers:
            controller.set_peers(addresses)

    def start(self) -> "ControllerGroup":
        for controller in self.controllers:
            controller.start()
        return self

    def stop(self) -> None:
        for controller in self.controllers:
            controller.stop()

    def addresses(self) -> List[Address]:
        return [controller.address for controller in self.controllers]

    def client_url(self, network_name: str = "default") -> str:
        """A multi-controller Sequoia URL, e.g.
        ``sequoia://controller1,controller2/vdb``."""
        hosts = ",".join(self.addresses())
        database = self.controllers[0].config.virtual_database
        return f"sequoia://{hosts}/{database}?network={network_name}"
