"""Write broadcast across the replicated backends.

A write must reach every backend hosting the tables it touches — all of
them under RAIDb-1, the placement map's hosting subset under RAIDb-0/2
(the scheduler computes the target list; this layer executes on whatever
it is handed). The original scheduler executed them one backend after
another, so the wall-clock cost of a write grew linearly with the
replica count. The broadcaster runs the statement on all target backends
concurrently on a shared thread pool and aggregates the per-backend
outcomes; the scheduler then decides what a partial failure means (mark
the backend failed, keep the first success).

``parallel=False`` preserves the sequential behaviour — the benchmarks
compare both modes on latency-injected backends.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend

QueryResult = Tuple[List[str], List[Any], int]


@dataclass
class BackendOutcome:
    """Result of one statement on one backend. ``error`` is usually a
    :class:`DriverError`, but any exception the backend raised is
    captured here — see :meth:`WriteBroadcaster._run_one`."""

    backend: Backend
    result: Optional[QueryResult] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BroadcastOutcome:
    """Aggregate of one write across all enabled backends.

    ``outcomes`` preserves the backend list order, so ``result`` (the
    first success in that order) is deterministic regardless of which
    thread finished first.
    """

    outcomes: List[BackendOutcome] = field(default_factory=list)

    @property
    def result(self) -> Optional[QueryResult]:
        for outcome in self.outcomes:
            if outcome.ok:
                return outcome.result
        return None

    @property
    def succeeded(self) -> List[BackendOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failed(self) -> List[BackendOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def failure_messages(self) -> List[str]:
        return [f"{o.backend.name}: {o.error}" for o in self.failed]


@dataclass
class BatchBroadcastOutcome:
    """Aggregate of one *batch* of statements across the target backends.

    ``outcomes[b][i]`` is backend ``b``'s outcome for statement ``i`` —
    backend-major because that is how the work is dispatched (one task
    per backend carrying the whole batch). :meth:`per_statement`
    re-slices statement-major so the scheduler can account each
    statement exactly as if it had been broadcast alone."""

    backends: List[Backend] = field(default_factory=list)
    statement_count: int = 0
    outcomes: List[List[BackendOutcome]] = field(default_factory=list)

    def per_statement(self, index: int) -> BroadcastOutcome:
        return BroadcastOutcome([per_backend[index] for per_backend in self.outcomes])


class WriteBroadcaster:
    """Executes one statement on many backends, optionally in parallel."""

    #: Auto-sizing floor: the pool never shrinks below the historical
    #: default, so small clusters keep their headroom for concurrent
    #: disjoint-table broadcasts.
    DEFAULT_MAX_WORKERS = 8

    def __init__(self, parallel: bool = True, max_workers: Optional[int] = None) -> None:
        self.parallel = parallel
        # None = auto-scale: grow the pool to the widest fan-out seen, so
        # a cluster with >8 replicas still broadcasts to all of them at
        # once (a hardcoded 8 serialised the overflow). An explicit value
        # stays fixed — the operator asked for that cap.
        self._configured_max_workers = max_workers if max_workers is None else max(1, max_workers)
        self._pool_size = self._configured_max_workers or self.DEFAULT_MAX_WORKERS
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._lock = threading.Lock()
        # Counters are guarded by _lock: the conflict-aware scheduler
        # runs disjoint-table broadcasts through here concurrently.
        self.broadcasts = 0
        self.statements_dispatched = 0
        self.batch_broadcasts = 0
        self.batched_statements = 0
        self._in_flight = 0

    def _get_executor(self, fan_out: int = 0) -> Optional[ThreadPoolExecutor]:
        stale: Optional[ThreadPoolExecutor] = None
        with self._lock:
            if self._closed:
                # A write still in flight when the owner shut down must not
                # resurrect the pool (it would leak); it runs sequentially.
                return None
            if self._configured_max_workers is None and fan_out > self._pool_size:
                # Auto mode: a wider replica set arrived — replace the
                # pool with a bigger one. Statements already submitted to
                # the old pool finish on its threads; it is shut down
                # (without joining) once outside the lock.
                stale, self._executor = self._executor, None
                self._pool_size = fan_out
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._pool_size, thread_name_prefix="broadcast"
                )
            executor = self._executor
        if stale is not None:
            stale.shutdown(wait=False)
        return executor

    def broadcast(
        self,
        backends: List[Backend],
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        trace=None,
    ) -> BroadcastOutcome:
        """``trace`` (an optional :class:`repro.obs.Trace`) receives one
        ``replica:<name>`` child span per backend under the caller's
        ``execute`` span; None (the default) times nothing."""
        with self._lock:
            self.broadcasts += 1
            self.statements_dispatched += len(backends)
            self._in_flight += 1
        try:
            executor = (
                self._get_executor(len(backends))
                if self.parallel and len(backends) > 1
                else None
            )
            if executor is None:
                return BroadcastOutcome(
                    [self._run_one(backend, sql, params, trace) for backend in backends]
                )
            futures = [
                executor.submit(self._run_one, backend, sql, params, trace)
                for backend in backends
            ]
            return BroadcastOutcome([future.result() for future in futures])
        finally:
            with self._lock:
                self._in_flight -= 1

    def broadcast_batch(
        self,
        backends: List[Backend],
        statements: List[Tuple[str, Optional[Dict[str, Any]]]],
        trace=None,
    ) -> BatchBroadcastOutcome:
        """Execute an ordered batch of statements on every target backend
        — **one task per replica carrying the whole batch**, so the
        round-trip cost of N coalesced writes equals that of one.
        ``trace`` (the batch leader's) gets per-replica child spans."""
        with self._lock:
            self.broadcasts += 1  # one fan-out round trip, however many statements
            self.batch_broadcasts += 1
            self.statements_dispatched += len(backends) * len(statements)
            self.batched_statements += len(statements)
            self._in_flight += 1
        try:
            executor = (
                self._get_executor(len(backends))
                if self.parallel and len(backends) > 1
                else None
            )
            if executor is None:
                per_backend = [
                    self._run_batch_one(backend, statements, trace) for backend in backends
                ]
            else:
                futures = [
                    executor.submit(self._run_batch_one, backend, statements, trace)
                    for backend in backends
                ]
                per_backend = [future.result() for future in futures]
            return BatchBroadcastOutcome(
                backends=list(backends),
                statement_count=len(statements),
                outcomes=per_backend,
            )
        finally:
            with self._lock:
                self._in_flight -= 1

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "parallel": self.parallel,
                "max_workers": self._configured_max_workers,
                "effective_max_workers": self._pool_size,
                "auto_sized": self._configured_max_workers is None,
                "broadcasts": self.broadcasts,
                "statements_dispatched": self.statements_dispatched,
                "batch_broadcasts": self.batch_broadcasts,
                "batched_statements": self.batched_statements,
                "in_flight": self._in_flight,
            }

    @staticmethod
    def _run_one(
        backend: Backend,
        sql: str,
        params: Optional[Dict[str, Any]],
        trace=None,
    ) -> BackendOutcome:
        backend.begin_request()
        started = time.monotonic() if trace is not None else 0.0
        outcome: Optional[BackendOutcome] = None
        try:
            result = backend.execute(sql, params)
        except Exception as exc:  # noqa: BLE001 - aggregated per backend
            # Catch *everything*, not just DriverError: an unexpected
            # exception (driver bug, broken connection object) used to
            # re-raise out of future.result() in broadcast(), dropping
            # every sibling outcome — the scheduler never saw which
            # backends had already applied the write, so the failing
            # backend was never marked FAILED and silently diverged.
            # A non-DriverError is a replica fault by definition (it is
            # not one of STATEMENT_FAULTS), so the scheduler fails the
            # backend exactly as for a dead connection.
            outcome = BackendOutcome(backend=backend, error=exc)
            return outcome
        finally:
            backend.finish_request()
            if trace is not None:
                # The span name carries the backend; the error attr only
                # appears on failure so the common-case record stays a
                # bare [name, start, duration] on the wire.
                if outcome is None:
                    trace.record(
                        f"replica:{backend.name}", started, time.monotonic(),
                        parent="execute",
                    )
                else:
                    trace.record(
                        f"replica:{backend.name}", started, time.monotonic(),
                        parent="execute", error=True,
                    )
        return BackendOutcome(backend=backend, result=result)

    @staticmethod
    def _run_batch_one(
        backend: Backend,
        statements: List[Tuple[str, Optional[Dict[str, Any]]]],
        trace=None,
    ) -> List[BackendOutcome]:
        backend.begin_request()
        started = time.monotonic() if trace is not None else 0.0
        try:
            pairs = backend.execute_batch(statements)
        except Exception as exc:  # noqa: BLE001 - aggregated per backend
            # execute_batch captures per-statement faults itself; anything
            # escaping it is a replica-level fault poisoning the whole
            # batch on this backend (same rationale as _run_one).
            return [BackendOutcome(backend=backend, error=exc) for _ in statements]
        finally:
            backend.finish_request()
            if trace is not None:
                trace.record(
                    f"replica:{backend.name}",
                    started,
                    time.monotonic(),
                    parent="execute",
                )
        return [
            BackendOutcome(backend=backend, result=result, error=error)
            for result, error in pairs
        ]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def reopen(self) -> None:
        """Allow parallel broadcasting again (a restarted controller)."""
        with self._lock:
            self._closed = False
