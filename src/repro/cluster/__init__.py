"""Sequoia-like database replication middleware (paper Section 5.3).

Sequoia is the open-source middleware the paper uses for its case studies:
client applications talk to *controllers* through a failover-capable
driver; controllers replicate writes to a set of database *backends*
(RAIDb-1 style full replication), load-balance reads, and can disable /
re-enable / resynchronise backends around consistent checkpoints.

This package implements the pieces those case studies exercise:

- :mod:`repro.cluster.wire` — the versioned controller wire protocol
  (drivers are backward compatible with older controllers); v3 adds
  session multiplexing and statement pipelining (see docs/wire.md),
- :mod:`repro.cluster.recovery` — the durable recovery subsystem:
  pluggable log stores (in-memory / segmented JSONL files), named
  checkpoints with compaction, dump-based backend cold start and the
  heartbeat failure detector (see docs/recovery.md) — the old
  ``repro.cluster.recovery_log`` compatibility shim has been removed,
- :mod:`repro.cluster.backend` — backend management (enable / disable /
  checkpoint / resync), with a pluggable connection factory so backends
  can be reached through a legacy driver *or* through a Drivolution
  bootloader (the hybrid deployment of Section 5.3.2),
- :mod:`repro.cluster.classifier` — SQL-aware statement classification on
  the sqlengine token stream, extracting read/written table names
  (canonicalised so quoting and schema qualification don't split keys),
- :mod:`repro.cluster.placement` — table placement across the RAIDb
  spectrum: full replication (RAIDb-1, default), hash-spread partial
  replication (RAIDb-2), pure partitioning (RAIDb-0) and explicit
  per-table assignment (see docs/placement.md),
- :mod:`repro.cluster.loadbalancer` — pluggable read policies
  (round-robin, least-pending, weighted) over the placement's
  per-statement candidate set,
- :mod:`repro.cluster.broadcaster` — thread-pooled parallel write
  broadcast with per-backend failure aggregation,
- :mod:`repro.cluster.querycache` — SELECT-result cache invalidated by
  the tables each write touches,
- :mod:`repro.cluster.scheduler` — the request scheduler orchestrating
  classifier → policy → broadcaster → cache (see docs/scheduling.md),
- :mod:`repro.cluster.controller` — the controller itself, optionally
  embedding a Drivolution server replicated across the controller group,
- :mod:`repro.cluster.driver` — the cluster client driver with
  multi-controller URLs, automatic failover, and multiplexed logical
  sessions sharing pooled physical channels.
"""

from repro.cluster.wire import CLUSTER_PROTOCOL_VERSION, MULTIPLEX_MIN_VERSION
from repro.cluster.recovery import (
    Checkpoint,
    CheckpointRegistry,
    DatabaseDump,
    DatabaseDumper,
    FailureDetector,
    FileLogStore,
    GroupCommit,
    LogCompactedError,
    LogEntry,
    LogStore,
    MemoryLogStore,
    RecoveryLog,
)
from repro.cluster.backend import Backend, BackendState
from repro.cluster.classifier import (
    ClassifiedStatement,
    StatementKind,
    classify,
    normalize_table_name,
)
from repro.cluster.placement import (
    ExplicitPolicy,
    FullReplicationPolicy,
    HashSpreadPolicy,
    NoHostingBackendError,
    PlacementMap,
    PlacementPolicy,
    Raidb0Policy,
    available_placements,
    create_placement,
)
from repro.cluster.loadbalancer import (
    LeastPendingPolicy,
    ReadPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
    available_policies,
    create_policy,
)
from repro.cluster.broadcaster import BroadcastOutcome, WriteBroadcaster
from repro.cluster.locks import LockManager
from repro.cluster.querycache import QueryCache
from repro.cluster.scheduler import RequestScheduler, SchedulerError, is_write_statement
from repro.cluster.controller import (
    Controller,
    ControllerConfig,
    ControllerGroup,
    SessionContext,
)
from repro.cluster.driver import (
    ClusterConnection,
    ClusterDriverRuntime,
    MultiplexedChannel,
    SequoiaDriver,
)

__all__ = [
    "CLUSTER_PROTOCOL_VERSION",
    "MULTIPLEX_MIN_VERSION",
    "GroupCommit",
    "RecoveryLog",
    "LogEntry",
    "LogStore",
    "MemoryLogStore",
    "FileLogStore",
    "LogCompactedError",
    "Checkpoint",
    "CheckpointRegistry",
    "DatabaseDump",
    "DatabaseDumper",
    "FailureDetector",
    "Backend",
    "BackendState",
    "ClassifiedStatement",
    "StatementKind",
    "classify",
    "normalize_table_name",
    "PlacementMap",
    "PlacementPolicy",
    "FullReplicationPolicy",
    "HashSpreadPolicy",
    "Raidb0Policy",
    "ExplicitPolicy",
    "NoHostingBackendError",
    "available_placements",
    "create_placement",
    "ReadPolicy",
    "RoundRobinPolicy",
    "LeastPendingPolicy",
    "WeightedPolicy",
    "available_policies",
    "create_policy",
    "BroadcastOutcome",
    "WriteBroadcaster",
    "LockManager",
    "QueryCache",
    "RequestScheduler",
    "SchedulerError",
    "is_write_statement",
    "Controller",
    "ControllerConfig",
    "ControllerGroup",
    "SessionContext",
    "ClusterDriverRuntime",
    "ClusterConnection",
    "MultiplexedChannel",
    "SequoiaDriver",
]
