"""Recovery log: the ordered history of write statements.

The controller appends every write it broadcasts to this log. A backend
that was disabled (for maintenance, driver upgrade, or because it failed)
records the log index of its last applied write — its *checkpoint* — and
is resynchronised on re-enable by replaying everything after that index.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """One logged write statement."""

    index: int
    sql: str
    params: Dict[str, Any] = field(default_factory=dict)
    transaction_id: Optional[str] = None


class RecoveryLog:
    """Append-only log of write statements with monotonically growing indexes."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._lock = threading.Lock()

    def append(self, sql: str, params: Optional[Dict[str, Any]] = None, transaction_id: Optional[str] = None) -> LogEntry:
        """Append one write; returns the entry with its assigned index."""
        with self._lock:
            entry = LogEntry(
                index=len(self._entries) + 1,
                sql=sql,
                params=dict(params or {}),
                transaction_id=transaction_id,
            )
            self._entries.append(entry)
            return entry

    @property
    def last_index(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries_after(self, index: int) -> List[LogEntry]:
        """Entries with index strictly greater than ``index`` (for resync)."""
        with self._lock:
            if index < 0:
                index = 0
            return list(self._entries[index:])

    def __len__(self) -> int:
        return self.last_index
