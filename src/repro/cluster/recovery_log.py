"""Backward-compatible import path for the recovery log.

The recovery log grew into the :mod:`repro.cluster.recovery` package:
pluggable log stores (memory / segmented JSONL files), named checkpoints,
compaction and dump-based cold start. This module keeps the original
import path working; new code should import from
``repro.cluster.recovery`` directly.
"""

from repro.cluster.recovery.log import LogCompactedError, RecoveryLog
from repro.cluster.recovery.logstore import (
    FileLogStore,
    LogEntry,
    LogStore,
    MemoryLogStore,
)

__all__ = [
    "RecoveryLog",
    "LogEntry",
    "LogStore",
    "MemoryLogStore",
    "FileLogStore",
    "LogCompactedError",
]
