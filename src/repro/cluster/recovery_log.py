"""Deprecated import path for the recovery log.

The recovery log grew into the :mod:`repro.cluster.recovery` package:
pluggable log stores (memory / segmented JSONL files), named checkpoints,
compaction and dump-based cold start. This module keeps the original
import path working but warns on import; import from
``repro.cluster.recovery`` instead.
"""

import warnings

warnings.warn(
    "repro.cluster.recovery_log is deprecated; import from "
    "repro.cluster.recovery instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.cluster.recovery.log import LogCompactedError, RecoveryLog
from repro.cluster.recovery.logstore import (
    FileLogStore,
    LogEntry,
    LogStore,
    MemoryLogStore,
)

__all__ = [
    "RecoveryLog",
    "LogEntry",
    "LogStore",
    "MemoryLogStore",
    "FileLogStore",
    "LogCompactedError",
]
