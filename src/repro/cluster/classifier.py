"""SQL-aware statement classification for the request scheduler.

The original scheduler sniffed the first word of each statement, which
misclassified ``WITH ... SELECT``, parenthesized selects and ``EXPLAIN``
as writes — broadcasting them to every backend and appending them to the
recovery log, so read-only statements were replayed during resync.

This module classifies statements on the real token stream produced by
:mod:`repro.sqlengine.tokenizer` and extracts the table names each
statement reads and writes. Table sets drive two things downstream:

- the query-result cache invalidates exactly the cached SELECTs that read
  a table the write touches,
- the recovery log only records genuine writes.

Statements the tokenizer cannot understand fall back to conservative
prefix classification (treated as writes with an unknown table set, which
invalidates the whole cache).

Table names are *canonicalised* by :func:`normalize_table_name`: quoted
identifiers lose their quotes, everything is lowercased, and the default
``public`` schema qualifier is stripped — so ``"Users"``, ``users`` and
``public.users`` produce the same key. Placement routing and query-cache
invalidation both key off these names; a spelling-dependent key would
route (or invalidate) the same table inconsistently.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.tokenizer import Token, tokenize


class StatementKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    TRANSACTION = "transaction"
    UNKNOWN = "unknown"


#: Commands that start a read-only statement.
_READ_COMMANDS = {"SELECT", "EXPLAIN", "SHOW", "DESCRIBE", "DESC"}
#: Commands that modify database state.
_WRITE_COMMANDS = {
    "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER",
    "TRUNCATE", "REPLACE", "MERGE", "GRANT", "REVOKE", "SET",
}
#: Transaction-control commands: broadcast but never logged for resync.
_TRANSACTION_COMMANDS = {"BEGIN", "COMMIT", "ROLLBACK", "START", "SAVEPOINT"}
#: Keywords that end a DML WHERE clause at statement depth.
_WHERE_TERMINATORS = {"ORDER", "GROUP", "HAVING", "LIMIT", "OFFSET", "RETURNING"}
#: Functions whose result changes between calls, so their SELECTs must
#: not be served from the query cache. Called forms require a following
#: ``(``; the CURRENT_* keywords also appear bare (the sqlengine parser
#: accepts both spellings).
_NONDETERMINISTIC_FUNCTIONS = {"NOW", "RANDOM", "RAND"}
_NONDETERMINISTIC_KEYWORDS = {"CURRENT_TIMESTAMP", "CURRENT_DATE", "CURRENT_TIME"}


#: One side of an extracted predicate/value, pre-parameter-resolution:
#: ``("value", literal)`` for an inline literal (NULL → ``None``,
#: TRUE/FALSE → bool), ``("param", name)`` for a named placeholder
#: (positional ``?`` keeps the name ``"?"`` — never resolvable, so the
#: scheduler falls back to a table lock), ``("opaque", None)`` for an
#: expression the classifier refuses to evaluate (``DEFAULT``, ``v + 1``,
#: a subquery…).
KeyExpr = Tuple[str, Any]


@dataclass(frozen=True)
class ClassifiedStatement:
    """What the scheduler needs to know about one SQL statement."""

    kind: StatementKind
    #: The leading command keyword after unwrapping parens/EXPLAIN/WITH
    #: (e.g. ``SELECT`` for ``WITH c AS (...) SELECT ...``).
    command: str = ""
    read_tables: FrozenSet[str] = frozenset()
    write_tables: FrozenSet[str] = frozenset()
    #: Tables named as ``REFERENCES`` targets (DDL): under partial
    #: replication every host of the created table must also host these,
    #: or per-row foreign-key checks fail on some replicas.
    referenced_tables: FrozenSet[str] = frozenset()
    #: Whether the result may be stored in the query cache.
    cacheable: bool = False
    #: Top-level AND-connected ``column = <scalar>`` conjuncts from a DML
    #: WHERE clause, as ``(column, KeyExpr)`` pairs. Sound to use for
    #: narrowing because every *conjunct* only shrinks the matched row
    #: set — so if ``pk = v`` appears here, the statement touches at most
    #: the row with that key no matter what the other conjuncts say.
    #: Empty when there is no WHERE, when a top-level OR widens the set,
    #: or when no conjunct is a simple equality.
    where_equalities: Tuple[Tuple[str, KeyExpr], ...] = ()
    #: Top-level AND-connected ``column IN (scalar, scalar, ...)``
    #: conjuncts, as ``(column, (KeyExpr, ...))`` pairs. Same soundness
    #: argument as :attr:`where_equalities`: an AND-conjunct only shrinks
    #: the matched rows, so ``pk IN (a, b)`` bounds the statement to at
    #: most the rows with those keys. ``NOT IN`` and ``IN (SELECT ...)``
    #: never match (they don't bound the row set by listed keys).
    where_in_lists: Tuple[Tuple[str, Tuple[KeyExpr, ...]], ...] = ()
    #: Columns assigned by an UPDATE's SET list. An UPDATE that assigns
    #: the primary key moves the row to a *second* key, so the scheduler
    #: must fall back to a table lock when the PK is in here.
    set_columns: FrozenSet[str] = frozenset()
    #: INSERT column list (``None`` when the statement omits it — the
    #: scheduler then maps values by catalog ordinal position).
    insert_columns: Optional[Tuple[str, ...]] = None
    #: The single VALUES row of an INSERT, positionally. ``None`` for
    #: multi-row inserts, ``INSERT ... SELECT`` and anything else that
    #: is not one literal row — those fall back to a table lock.
    insert_values: Optional[Tuple[KeyExpr, ...]] = None

    @property
    def is_read(self) -> bool:
        return self.kind is StatementKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is StatementKind.WRITE

    @property
    def is_transaction_control(self) -> bool:
        return self.kind is StatementKind.TRANSACTION

    @property
    def tables(self) -> FrozenSet[str]:
        return self.read_tables | self.write_tables

    @property
    def lock_tables(self) -> Optional[FrozenSet[str]]:
        """Table set a broadcast of this statement must lock, or ``None``
        when only the exclusive global lock is safe.

        A genuine write locks everything it touches: its write tables
        (two writers of one table must serialise), its read tables (an
        ``INSERT INTO a SELECT FROM b`` observing different states of
        ``b`` on different replicas would diverge ``a``) and any
        ``REFERENCES`` targets (their placement is mutated at DDL time).
        An in-transaction read locks its read set the same way. ``None``
        — the exclusive fallback — for transaction control (broadcast to
        every backend, mutates the scheduler's transaction accounting),
        for unknown statements, and for any statement whose table set
        could not be extracted: not knowing what a statement conflicts
        with means conflicting with everything, so today's total order is
        the worst case, never violated."""
        if self.is_transaction_control or self.kind is StatementKind.UNKNOWN:
            return None
        scope = self.read_tables | self.write_tables | self.referenced_tables
        if not scope:
            return None
        if self.is_write and not self.write_tables:
            # A "write" with no extracted write target is the
            # conservative-fallback shape: unknown side effects.
            return None
        return scope


#: Schema qualifier that names the default schema: ``public.users`` and
#: ``users`` are the same table, so the qualifier is stripped from the
#: canonical form. Other schemas (``information_schema``, application
#: schemas) stay qualified — they are genuinely distinct namespaces.
_DEFAULT_SCHEMA = "public"


def normalize_table_name(name: str) -> str:
    """Canonicalise one (possibly qualified, possibly quoted) table name.

    ``"Users"`` → ``users``, ``Public."Users"`` → ``users``,
    ``myschema.Orders`` → ``myschema.orders``. This is the form stored in
    ``read_tables``/``write_tables`` and keyed on by the placement map
    and the query cache's invalidation index.
    """
    parts = [part.strip().strip('"').lower() for part in str(name).split(".")]
    parts = [part for part in parts if part]
    if len(parts) > 1 and parts[0] == _DEFAULT_SCHEMA:
        parts = parts[1:]
    return ".".join(parts)


def classify(sql: str) -> ClassifiedStatement:
    """Classify one statement (results are memoised — this is the hot path)."""
    return _classify_cached(sql)


@functools.lru_cache(maxsize=4096)
def _classify_cached(sql: str) -> ClassifiedStatement:
    if not sql or not sql.strip():
        return ClassifiedStatement(kind=StatementKind.READ)
    try:
        tokens = tokenize(sql)
    except SqlParseError:
        return _classify_by_prefix(sql)
    if not tokens:
        return ClassifiedStatement(kind=StatementKind.READ)
    return _classify_tokens(tokens)


def _classify_by_prefix(sql: str) -> ClassifiedStatement:
    """Fallback for statements the tokenizer rejects."""
    head = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
    if head in _READ_COMMANDS:
        # No table information, so the result can never be invalidated
        # accurately — refuse to cache it.
        return ClassifiedStatement(kind=StatementKind.READ, command=head)
    if head in _TRANSACTION_COMMANDS:
        return ClassifiedStatement(kind=StatementKind.TRANSACTION, command=head)
    # Unknown statements are conservatively treated as writes touching an
    # unknown table set (empty write_tables ⇒ full cache invalidation).
    return ClassifiedStatement(kind=StatementKind.WRITE, command=head)


def _is_ident(token: Optional[Token], value: Optional[str] = None) -> bool:
    if token is None or token.kind != "IDENT":
        return False
    if value is None:
        return True
    # Keyword matching only: a double-quoted identifier is always a name
    # ("from" is a column called from, never the FROM keyword).
    return not getattr(token, "quoted", False) and str(token.value).upper() == value


def _is_op(token: Optional[Token], value: str) -> bool:
    return token is not None and token.kind == "OP" and token.value == value


def _find_command(tokens: List[Token]) -> Tuple[str, int, FrozenSet[str], bool]:
    """Locate the main command keyword, unwrapping ``(...)``, ``EXPLAIN``
    and ``WITH`` prefixes. Returns (command, index, cte_names, explain)."""
    index = 0
    length = len(tokens)
    explain = False
    while index < length and _is_op(tokens[index], "("):
        index += 1
    if index < length and _is_ident(tokens[index], "EXPLAIN"):
        explain = True
        index += 1
        if index < length and _is_ident(tokens[index], "ANALYZE"):
            index += 1
    cte_names: set = set()
    if index < length and _is_ident(tokens[index], "WITH"):
        index += 1
        if index < length and _is_ident(tokens[index], "RECURSIVE"):
            index += 1
        while index < length and tokens[index].kind == "IDENT":
            cte_names.add(str(tokens[index].value).lower())
            index += 1
            # Optional column list: name (a, b) AS (...)
            if _is_op(tokens[index] if index < length else None, "("):
                index = _skip_balanced(tokens, index)
            if _is_ident(tokens[index] if index < length else None, "AS"):
                index += 1
            if _is_op(tokens[index] if index < length else None, "("):
                index = _skip_balanced(tokens, index)
            if _is_op(tokens[index] if index < length else None, ","):
                index += 1
                continue
            break
    if (
        index < length
        and tokens[index].kind == "IDENT"
        and not getattr(tokens[index], "quoted", False)
    ):
        return str(tokens[index].value).upper(), index, frozenset(cte_names), explain
    return "", index, frozenset(cte_names), explain


def _skip_balanced(tokens: List[Token], index: int) -> int:
    """Skip past one balanced ``( ... )`` group starting at ``index``."""
    depth = 0
    length = len(tokens)
    while index < length:
        if _is_op(tokens[index], "("):
            depth += 1
        elif _is_op(tokens[index], ")"):
            depth -= 1
            if depth == 0:
                return index + 1
        index += 1
    return index


def _read_table_name(tokens: List[Token], index: int) -> Tuple[Optional[str], int]:
    """Read a possibly dotted table name at ``index``; returns (name, next)."""
    if index >= len(tokens) or tokens[index].kind != "IDENT":
        return None, index
    name = str(tokens[index].value)
    index += 1
    if _is_op(tokens[index] if index < len(tokens) else None, ".") and (
        index + 1 < len(tokens) and tokens[index + 1].kind == "IDENT"
    ):
        name = f"{name}.{tokens[index + 1].value}"
        index += 2
    return normalize_table_name(name), index


def _find_keyword(tokens: List[Token], start: int, keyword: str) -> int:
    """Index of the first depth-0 occurrence of ``keyword`` at or after
    ``start``, or -1. Occurrences inside parens (subqueries, expression
    groups) belong to a nested scope and are skipped."""
    depth = 0
    for index in range(start, len(tokens)):
        token = tokens[index]
        if _is_op(token, "("):
            depth += 1
        elif _is_op(token, ")"):
            depth -= 1
        elif depth == 0 and _is_ident(token, keyword):
            return index
    return -1


def _scalar_expr(tokens: List[Token], index: int) -> Tuple[Optional[KeyExpr], int]:
    """Match one scalar at ``index``: a literal (with optional unary
    minus), a parameter, or the NULL/TRUE/FALSE keywords. Returns
    (KeyExpr, next_index), or (None, index) when the shape is anything
    else."""
    if index >= len(tokens):
        return None, index
    token = tokens[index]
    if token.kind in ("NUMBER", "STRING"):
        return ("value", token.value), index + 1
    if token.kind == "PARAM":
        return ("param", str(token.value)), index + 1
    if _is_op(token, "-") and index + 1 < len(tokens) and tokens[index + 1].kind == "NUMBER":
        return ("value", -tokens[index + 1].value), index + 2
    if _is_ident(token, "NULL"):
        return ("value", None), index + 1
    if _is_ident(token, "TRUE"):
        return ("value", True), index + 1
    if _is_ident(token, "FALSE"):
        return ("value", False), index + 1
    return None, index


def _read_column_name(tokens: List[Token], index: int) -> Tuple[Optional[str], int]:
    """Read a possibly qualified column reference; returns the bare
    column name (qualifier stripped, lowercased) and the next index."""
    if index >= len(tokens) or tokens[index].kind != "IDENT":
        return None, index
    name = str(tokens[index].value)
    index += 1
    while (
        _is_op(tokens[index] if index < len(tokens) else None, ".")
        and index + 1 < len(tokens)
        and tokens[index + 1].kind == "IDENT"
    ):
        name = str(tokens[index + 1].value)
        index += 2
    return name.strip('"').lower(), index


def _strip_outer_parens(tokens: List[Token]) -> List[Token]:
    while (
        len(tokens) >= 2
        and _is_op(tokens[0], "(")
        and _skip_balanced(tokens, 0) == len(tokens)
    ):
        tokens = tokens[1:-1]
    return tokens


def _match_equality(conjunct: List[Token]) -> Optional[Tuple[str, KeyExpr]]:
    """Match ``column = scalar`` (either side order) exactly — function
    calls, casts and compound expressions fail the match and the conjunct
    is simply ignored (it can only narrow the row set further)."""
    conjunct = _strip_outer_parens(conjunct)
    column, index = _read_column_name(conjunct, 0)
    if column is not None and _is_op(conjunct[index] if index < len(conjunct) else None, "="):
        expr, end = _scalar_expr(conjunct, index + 1)
        if expr is not None and end == len(conjunct):
            return column, expr
    expr, index = _scalar_expr(conjunct, 0)
    if expr is not None and _is_op(conjunct[index] if index < len(conjunct) else None, "="):
        column, end = _read_column_name(conjunct, index + 1)
        if column is not None and end == len(conjunct):
            return column, expr
    return None


def _match_in_list(conjunct: List[Token]) -> Optional[Tuple[str, Tuple[KeyExpr, ...]]]:
    """Match ``column IN (scalar, scalar, ...)`` exactly. Every element
    must be one scalar — a subquery, expression or empty list fails the
    match (the conjunct is then simply ignored, which is always safe:
    ignoring an AND-conjunct can only widen the *assumed* row set, and
    the caller falls back to a coarser lock). ``column NOT IN (...)``
    cannot match: after the column name the next token is NOT, never the
    IN keyword."""
    conjunct = _strip_outer_parens(conjunct)
    column, index = _read_column_name(conjunct, 0)
    if column is None or not _is_ident(conjunct[index] if index < len(conjunct) else None, "IN"):
        return None
    index += 1
    if not _is_op(conjunct[index] if index < len(conjunct) else None, "("):
        return None
    # The parenthesized list must be the conjunct's tail — trailing
    # tokens mean this is some larger expression we don't understand.
    if _skip_balanced(conjunct, index) != len(conjunct):
        return None
    elements: List[KeyExpr] = []
    index += 1
    end = len(conjunct) - 1  # the closing ")"
    while index < end:
        expr, index = _scalar_expr(conjunct, index)
        if expr is None:
            return None
        elements.append(expr)
        if index < end:
            if not _is_op(conjunct[index], ","):
                return None
            index += 1
            if index >= end:
                return None  # trailing comma
    if not elements:
        return None
    return column, tuple(elements)


def _extract_where_predicates(
    tokens: List[Token], start: int
) -> Tuple[Tuple[Tuple[str, KeyExpr], ...], Tuple[Tuple[str, Tuple[KeyExpr, ...]], ...]]:
    """Collect the simple equality and IN-list conjuncts of a DML WHERE
    clause. A depth-0 OR abandons extraction entirely: a disjunction
    *widens* the matched rows, so no single conjunct bounds the
    statement any more."""
    where = _find_keyword(tokens, start, "WHERE")
    if where < 0:
        return (), ()
    region: List[Token] = []
    depth = 0
    for index in range(where + 1, len(tokens)):
        token = tokens[index]
        if _is_op(token, "("):
            depth += 1
        elif _is_op(token, ")"):
            depth -= 1
            if depth < 0:
                break
        elif (
            depth == 0
            and token.kind == "IDENT"
            and not getattr(token, "quoted", False)
            and str(token.value).upper() in _WHERE_TERMINATORS
        ):
            break
        region.append(token)
    conjuncts: List[List[Token]] = [[]]
    depth = 0
    for token in region:
        if _is_op(token, "("):
            depth += 1
        elif _is_op(token, ")"):
            depth -= 1
        if depth == 0 and _is_ident(token, "OR"):
            return (), ()
        if depth == 0 and _is_ident(token, "AND"):
            conjuncts.append([])
        else:
            conjuncts[-1].append(token)
    equalities = []
    in_lists = []
    for conjunct in conjuncts:
        matched = _match_equality(conjunct)
        if matched is not None:
            equalities.append(matched)
            continue
        in_matched = _match_in_list(conjunct)
        if in_matched is not None:
            in_lists.append(in_matched)
    return tuple(equalities), tuple(in_lists)


def _extract_set_columns(tokens: List[Token], start: int) -> FrozenSet[str]:
    """Column names assigned by an UPDATE's SET list (depth-0 segment
    heads between SET and WHERE/end)."""
    set_index = _find_keyword(tokens, start, "SET")
    if set_index < 0:
        return frozenset()
    columns: set = set()
    depth = 0
    expecting_column = True
    index = set_index + 1
    while index < len(tokens):
        token = tokens[index]
        if _is_op(token, "("):
            depth += 1
        elif _is_op(token, ")"):
            depth -= 1
            if depth < 0:
                break
        elif depth == 0 and _is_ident(token, "WHERE"):
            break
        elif depth == 0 and _is_op(token, ","):
            expecting_column = True
        elif depth == 0 and expecting_column and token.kind == "IDENT":
            column, index = _read_column_name(tokens, index)
            if column is not None:
                columns.add(column)
            expecting_column = False
            continue
        index += 1
    return frozenset(columns)


def _extract_insert_shape(
    tokens: List[Token], start: int
) -> Tuple[Optional[Tuple[str, ...]], Optional[Tuple[KeyExpr, ...]]]:
    """The column list and single VALUES row of an INSERT. Multi-row
    inserts and ``INSERT ... SELECT`` return ``(columns, None)`` — the
    scheduler cannot reduce those to one key and takes a table lock."""
    into = _find_keyword(tokens, start, "INTO")
    if into < 0:
        return None, None
    _, index = _read_table_name(tokens, into + 1)
    columns: Optional[Tuple[str, ...]] = None
    if _is_op(tokens[index] if index < len(tokens) else None, "("):
        names: List[str] = []
        index += 1
        while index < len(tokens) and not _is_op(tokens[index], ")"):
            if tokens[index].kind == "IDENT":
                names.append(str(tokens[index].value).strip('"').lower())
            index += 1
        index += 1  # past the ")"
        columns = tuple(names)
    values_index = _find_keyword(tokens, index, "VALUES")
    if values_index < 0:
        return columns, None
    index = values_index + 1
    if not _is_op(tokens[index] if index < len(tokens) else None, "("):
        return columns, None
    row_end = _skip_balanced(tokens, index)
    # A second parenthesized row after a comma means multi-row.
    if (
        _is_op(tokens[row_end] if row_end < len(tokens) else None, ",")
        or row_end < len(tokens)
        and _is_op(tokens[row_end], "(")
    ):
        return columns, None
    # Split the row's tokens at depth-1 commas; each element must be one
    # scalar to stay evaluable, anything else is opaque.
    elements: List[List[Token]] = [[]]
    depth = 0
    for position in range(index, row_end):
        token = tokens[position]
        if _is_op(token, "("):
            depth += 1
            if depth == 1:
                continue
        elif _is_op(token, ")"):
            depth -= 1
            if depth == 0:
                continue
        if depth == 1 and _is_op(token, ","):
            elements.append([])
        else:
            elements[-1].append(token)
    values: List[KeyExpr] = []
    for element in elements:
        expr, end = _scalar_expr(element, 0)
        if expr is not None and end == len(element):
            values.append(expr)
        else:
            values.append(("opaque", None))
    return columns, tuple(values)


def _classify_tokens(tokens: List[Token]) -> ClassifiedStatement:
    command, cmd_index, cte_names, explain = _find_command(tokens)
    if not command:
        return ClassifiedStatement(kind=StatementKind.UNKNOWN)
    if command in _TRANSACTION_COMMANDS:
        return ClassifiedStatement(kind=StatementKind.TRANSACTION, command=command)
    if explain or command in _READ_COMMANDS:
        # EXPLAIN over anything — including EXPLAIN INSERT/UPDATE — only
        # describes the plan, it never modifies state.
        kind = StatementKind.READ
    elif command in _WRITE_COMMANDS:
        kind = StatementKind.WRITE
    else:
        kind = StatementKind.UNKNOWN

    read_tables: set = set()
    write_tables: set = set()
    referenced_tables: set = set()
    nondeterministic = False
    index = 0
    length = len(tokens)
    while index < length:
        token = tokens[index]
        if token.kind != "IDENT":
            index += 1
            continue
        if getattr(token, "quoted", False):
            # Quoted identifiers are names, never keywords — a column
            # called "from" must not start a table-name scan.
            index += 1
            continue
        keyword = str(token.value).upper()
        if keyword in _NONDETERMINISTIC_KEYWORDS:
            nondeterministic = True
            index += 1
            continue
        if keyword in _NONDETERMINISTIC_FUNCTIONS and _is_op(
            tokens[index + 1] if index + 1 < length else None, "("
        ):
            nondeterministic = True
            index += 1
            continue
        if keyword == "FROM":
            name, next_index = _read_table_name(tokens, index + 1)
            if name is not None:
                # DELETE FROM <t>: the FROM adjacent to the command names
                # the write target; every other FROM is a read source.
                if command == "DELETE" and index == cmd_index + 1:
                    write_tables.add(name)
                else:
                    read_tables.add(name)
            index = next_index
            continue
        if keyword == "JOIN":
            name, next_index = _read_table_name(tokens, index + 1)
            if name is not None:
                read_tables.add(name)
            index = next_index
            continue
        if keyword == "INTO":
            name, next_index = _read_table_name(tokens, index + 1)
            if name is not None:
                write_tables.add(name)
            index = next_index
            continue
        if keyword == "REFERENCES":
            name, next_index = _read_table_name(tokens, index + 1)
            if name is not None:
                referenced_tables.add(name)
            index = next_index
            continue
        if keyword == "UPDATE" and index == cmd_index:
            name, next_index = _read_table_name(tokens, index + 1)
            if name is not None:
                write_tables.add(name)
            index = next_index
            continue
        if keyword == "TABLE" and command in ("CREATE", "DROP", "ALTER", "TRUNCATE"):
            next_index = index + 1
            # Skip IF [NOT] EXISTS.
            if _is_ident(tokens[next_index] if next_index < length else None, "IF"):
                next_index += 1
                if _is_ident(tokens[next_index] if next_index < length else None, "NOT"):
                    next_index += 1
                if _is_ident(tokens[next_index] if next_index < length else None, "EXISTS"):
                    next_index += 1
            name, next_index = _read_table_name(tokens, next_index)
            if name is not None:
                write_tables.add(name)
            index = next_index
            continue
        index += 1

    read_tables -= cte_names
    write_tables -= cte_names
    if kind is StatementKind.READ:
        # A read never writes; tables picked up by INTO-style scans inside
        # odd statements stay on the read side.
        read_tables |= write_tables
        write_tables = set()
    cacheable = (
        kind is StatementKind.READ
        and not nondeterministic
        and not explain
        and command == "SELECT"
    )
    where_equalities: Tuple[Tuple[str, KeyExpr], ...] = ()
    where_in_lists: Tuple[Tuple[str, Tuple[KeyExpr, ...]], ...] = ()
    set_columns: FrozenSet[str] = frozenset()
    insert_columns: Optional[Tuple[str, ...]] = None
    insert_values: Optional[Tuple[KeyExpr, ...]] = None
    if kind is StatementKind.WRITE:
        if command in ("UPDATE", "DELETE"):
            where_equalities, where_in_lists = _extract_where_predicates(tokens, cmd_index)
        if command == "UPDATE":
            set_columns = _extract_set_columns(tokens, cmd_index)
        if command == "INSERT":
            insert_columns, insert_values = _extract_insert_shape(tokens, cmd_index)
    return ClassifiedStatement(
        kind=kind,
        command=command,
        read_tables=frozenset(read_tables),
        write_tables=frozenset(write_tables),
        referenced_tables=frozenset(referenced_tables),
        cacheable=cacheable,
        where_equalities=where_equalities,
        where_in_lists=where_in_lists,
        set_columns=set_columns,
        insert_columns=insert_columns,
        insert_values=insert_values,
    )


def is_write_statement(sql: str) -> bool:
    """Whether ``sql`` modifies state and must be broadcast to all replicas.

    Read-only statements — including ``WITH ... SELECT``, parenthesized
    selects and ``EXPLAIN`` — return False; everything else (writes,
    transaction control, unparseable statements) returns True.
    """
    return not classify(sql).is_read


def is_transaction_control(sql: str) -> bool:
    return classify(sql).is_transaction_control
