"""Pluggable read load-balancing policies.

The scheduler asks a :class:`ReadPolicy` to pick one enabled backend for
each read. Policies are deliberately stateless about membership: they are
handed the *current* enabled backend list on every call and must stay
well-behaved when backends are disabled, re-enabled or added mid-stream.

Policies no longer assume every enabled backend is a valid target: under
partial replication (see :mod:`repro.cluster.placement`) only the
backends hosting a statement's tables may serve it, so ``choose`` takes
an optional *candidate filter* narrowing the enabled list per statement.
Rotation state (cursors, weighted scores) is keyed so that filtering a
subset does not reset fairness across the full membership.

Available policies (selected by name via :func:`create_policy`, which is
how :class:`~repro.cluster.controller.ControllerConfig` configures them):

- ``round_robin`` — rotate over the enabled backends with an unbounded
  cursor, so the rotation stays uniform across membership changes,
- ``least_pending`` — pick the backend with the fewest in-flight
  statements (per-backend counters on :class:`~repro.cluster.backend.Backend`),
  breaking ties round-robin,
- ``weighted`` — smooth weighted round-robin over per-backend weights
  (either configured by name or taken from ``Backend.weight``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend
from repro.errors import DriverError


#: Per-statement candidate restriction: True ⇒ the backend may serve it.
CandidateFilter = Callable[[Backend], bool]


class ReadPolicy:
    """Strategy interface: choose one backend from a non-empty list.

    ``candidate_filter`` (when given) narrows the list to the backends
    allowed to serve this particular statement — placement routing under
    partial replication. The filtered set must be non-empty; the
    scheduler raises ``NoHostingBackendError`` before ever calling a
    policy with an unsatisfiable filter."""

    name = "abstract"

    def choose(
        self, backends: List[Backend], candidate_filter: Optional[CandidateFilter] = None
    ) -> Backend:
        raise NotImplementedError

    @staticmethod
    def _candidates(
        backends: List[Backend], candidate_filter: Optional[CandidateFilter]
    ) -> List[Backend]:
        if candidate_filter is None:
            return backends
        candidates = [backend for backend in backends if candidate_filter(backend)]
        if not candidates:
            raise DriverError("candidate filter excluded every enabled backend")
        return candidates


class RoundRobinPolicy(ReadPolicy):
    """Rotate over the enabled backends.

    Cursors are kept **per candidate set** (one per distinct filtered
    backend-name combination — under placement that is one per table
    host-set, a small number): a single shared cursor interleaved
    between differently-sized candidate lists can alias (e.g. strict 1:1
    interleave of a 2-candidate and a 3-candidate workload leaves the
    2-candidate reads always seeing an even cursor — one backend starves
    despite hosting the table).

    Each cursor grows without bound and is reduced modulo the candidate
    count only at selection time, and a newly seen set's cursor is
    seeded from a shared monotonic tick rather than zero — so a
    membership change (a backend disabled or re-enabled) shifts the
    rotation rather than deterministically restarting it at the
    list-first backend (the original scheduler stored one cursor already
    modded, which skewed the distribution on every membership change).
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursors: Dict[Tuple[str, ...], int] = {}
        self._ticks = 0
        self._lock = threading.Lock()

    def choose(
        self, backends: List[Backend], candidate_filter: Optional[CandidateFilter] = None
    ) -> Backend:
        candidates = self._candidates(backends, candidate_filter)
        key = tuple(sorted(backend.name for backend in candidates))
        with self._lock:
            self._ticks += 1
            cursor = self._cursors.get(key)
            if cursor is None:
                cursor = self._ticks
            choice = candidates[cursor % len(candidates)]
            self._cursors[key] = cursor + 1
            return choice


class LeastPendingPolicy(ReadPolicy):
    """Pick the backend with the fewest in-flight statements.

    Tie-break cursors are kept **per tied candidate set**, seeded from a
    shared monotonic tick, exactly as :class:`RoundRobinPolicy` keeps
    its rotation cursors: one cursor shared across differently-sized tie
    sets aliases — a strict interleave of 2-way and 3-way ties leaves
    the 2-way ties always seeing the same cursor parity, starving one of
    those backends despite it hosting the table."""

    name = "least_pending"

    def __init__(self) -> None:
        self._cursors: Dict[Tuple[str, ...], int] = {}
        self._ticks = 0
        self._lock = threading.Lock()

    def choose(
        self, backends: List[Backend], candidate_filter: Optional[CandidateFilter] = None
    ) -> Backend:
        eligible = self._candidates(backends, candidate_filter)
        with self._lock:
            # Snapshot the counters once: they move concurrently, and a
            # re-read between min() and the filter could leave no candidate.
            pairs = [(backend.pending, backend) for backend in eligible]
            least = min(pending for pending, _ in pairs)
            candidates = [backend for pending, backend in pairs if pending == least]
            key = tuple(sorted(backend.name for backend in candidates))
            self._ticks += 1
            cursor = self._cursors.get(key)
            if cursor is None:
                cursor = self._ticks
            choice = candidates[cursor % len(candidates)]
            self._cursors[key] = cursor + 1
            return choice


class WeightedPolicy(ReadPolicy):
    """Smooth weighted round-robin (the nginx algorithm).

    Each round every backend's running score grows by its weight; the
    highest score wins and is debited by the total weight. Over time each
    backend serves a share of reads proportional to its weight, without
    bursts. Scores are keyed by backend name, so membership changes only
    affect the backends that actually came or went.
    """

    name = "weighted"

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self._weights = dict(weights or {})
        self._scores: Dict[str, float] = {}
        self._lock = threading.Lock()

    def _weight_of(self, backend: Backend) -> float:
        weight = self._weights.get(backend.name, getattr(backend, "weight", 1.0))
        return max(float(weight), 0.0)

    def choose(
        self, backends: List[Backend], candidate_filter: Optional[CandidateFilter] = None
    ) -> Backend:
        candidates = self._candidates(backends, candidate_filter)
        with self._lock:
            total = 0.0
            best: Optional[Backend] = None
            best_score = float("-inf")
            for backend in candidates:
                weight = self._weight_of(backend)
                total += weight
                score = self._scores.get(backend.name, 0.0) + weight
                self._scores[backend.name] = score
                if score > best_score:
                    best = backend
                    best_score = score
            assert best is not None  # backends is non-empty
            self._scores[best.name] = best_score - (total if total > 0 else 1.0)
            return best


_POLICIES: Dict[str, Callable[..., ReadPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastPendingPolicy.name: LeastPendingPolicy,
    WeightedPolicy.name: WeightedPolicy,
}


def available_policies() -> List[str]:
    return sorted(_POLICIES)


def create_policy(name: str, **options: Any) -> ReadPolicy:
    """Instantiate a read policy by name (``ControllerConfig.read_policy``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise DriverError(
            f"unknown read policy {name!r} (available: {', '.join(available_policies())})"
        ) from None
    return factory(**options)
