"""Table placement: RAIDb-0/1/2 data distribution for the cluster.

The paper defines a spectrum of RAIDb levels for database clustering:

- **RAIDb-0** — partitioning: every table lives on exactly one backend,
  aggregate capacity grows with the cluster, no redundancy,
- **RAIDb-1** — full replication: every table on every backend (what the
  scheduler hardwired before this subsystem existed),
- **RAIDb-2** — partial replication: each table on a configurable subset
  of the backends, trading write fan-out against redundancy.

This package supplies the model the rest of the cluster consults:

- :mod:`repro.cluster.placement.map` — :class:`PlacementMap`, the
  authoritative table → hosting-backends mapping. Tables the map has
  never seen are assigned on first reference by the pluggable policy, so
  ``CREATE TABLE`` pins a new table's hosts the moment it is routed,
- :mod:`repro.cluster.placement.policies` — the placement policies
  (``full``, ``explicit``, ``hash:N`` spread, ``raidb0``) and the
  :func:`create_placement` factory parsing the string specs carried by
  :class:`~repro.cluster.controller.ControllerConfig` and the URL/config
  layer.

The scheduler routes reads to backends hosting *all* of a statement's
read tables (a cross-partition join falls back to any full replica),
fans writes out to only the backends hosting the written tables, filters
recovery-log replay per backend, and cold-starts partial replicas from
table-subset dumps. See docs/placement.md for the full walkthrough.
"""

from repro.cluster.placement.map import NoHostingBackendError, PlacementMap
from repro.cluster.placement.policies import (
    ExplicitPolicy,
    FullReplicationPolicy,
    HashSpreadPolicy,
    PlacementPolicy,
    Raidb0Policy,
    available_placements,
    create_placement,
)

__all__ = [
    "PlacementMap",
    "NoHostingBackendError",
    "PlacementPolicy",
    "FullReplicationPolicy",
    "ExplicitPolicy",
    "HashSpreadPolicy",
    "Raidb0Policy",
    "available_placements",
    "create_placement",
]
