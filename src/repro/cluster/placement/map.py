"""The placement map: which backends host which tables.

One :class:`PlacementMap` per scheduler. Lookups go through
:meth:`PlacementMap.hosts`: a table the map has pinned returns its fixed
host set; an unknown table is assigned by the policy *at first
reference* and pinned from then on, so the assignment a ``CREATE TABLE``
broadcast was routed by is exactly the assignment every later read,
write, replay filter and subset dump sees. Tables the policy leaves
unpinned (``full``) dynamically resolve to the whole backend universe.

All table names are canonicalised through
:func:`repro.cluster.classifier.normalize_table_name` so ``"Users"``,
``users`` and ``public.users`` key the same placement entry — routing
keys off the classifier's table sets, and those use the same
normalisation.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, TYPE_CHECKING

from repro.cluster.classifier import normalize_table_name
from repro.cluster.placement.policies import FullReplicationPolicy, PlacementPolicy
from repro.errors import DriverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.backend import Backend


class NoHostingBackendError(DriverError):
    """No enabled backend hosts the table set a statement needs.

    Raised by the scheduler when partial replication leaves a statement
    with nowhere to run: a cross-partition join with no full replica, or
    a write whose hosting backends are all down."""


#: Canonical-name prefixes of engine-owned catalogs. They exist on every
#: backend by construction, so placement never pins them — pinning one to
#: an arbitrary backend would make catalog reads fail whenever that
#: backend is down, for no reason.
_SYSTEM_PREFIXES = ("information_schema.",)


class PlacementMap:
    """Authoritative table → hosting-backend-names mapping."""

    def __init__(
        self,
        policy: Optional[PlacementPolicy] = None,
        assignments: Optional[Dict[str, Iterable[str]]] = None,
        backend_names: Iterable[str] = (),
    ) -> None:
        self._policy = policy or FullReplicationPolicy()
        self._lock = threading.Lock()
        #: Backend universe, in registration order (assignments key off a
        #: sorted copy, so order here does not affect hashing).
        self._universe: List[str] = []
        #: Pinned table → hosts. Tables the policy leaves unpinned
        #: (full replication) are deliberately absent.
        self._pinned: Dict[str, FrozenSet[str]] = {}
        for name in backend_names:
            if name not in self._universe:
                self._universe.append(name)
        for table, hosts in (assignments or {}).items():
            self.assign(table, hosts)

    # -- configuration -----------------------------------------------------------

    @property
    def policy(self) -> PlacementPolicy:
        return self._policy

    @property
    def is_full(self) -> bool:
        """True when this map is exact RAIDb-1: the full policy and no
        pinned partial assignment. The scheduler short-circuits every
        placement check in that case, so default configs pay nothing."""
        with self._lock:
            return isinstance(self._policy, FullReplicationPolicy) and not self._pinned

    def add_backend(self, name: str) -> None:
        """Grow the universe (pinned assignments never move)."""
        with self._lock:
            if name not in self._universe:
                self._universe.append(name)

    def remove_backend(self, name: str) -> None:
        """Forget a backend that never (successfully) joined — e.g. a
        failed bootstrap. Leaving a ghost in the universe would let the
        policy pin future tables to a backend that does not exist,
        making every statement on them raise NoHostingBackendError.
        Pinned host sets shed the name too (the survivors have the
        data); a table pinned *only* to the ghost is unpinned so the
        policy re-places it over the real universe."""
        with self._lock:
            if name in self._universe:
                self._universe.remove(name)
            for table, hosts in list(self._pinned.items()):
                if name in hosts:
                    remaining = hosts - {name}
                    if remaining:
                        self._pinned[table] = remaining
                    else:
                        del self._pinned[table]

    def backend_names(self) -> List[str]:
        with self._lock:
            return list(self._universe)

    def assign(self, table: str, hosts: Iterable[str]) -> None:
        """Pin ``table`` to ``hosts`` explicitly (admin override)."""
        host_set = frozenset(str(host) for host in hosts)
        if not host_set:
            raise DriverError(f"placement for table {table!r} names no backend")
        key = normalize_table_name(table)
        with self._lock:
            for host in host_set:
                if host not in self._universe:
                    self._universe.append(host)
            self._pinned[key] = host_set

    # -- lookups -----------------------------------------------------------------

    def hosts(self, table: str, pin: bool = True) -> FrozenSet[str]:
        """Backends hosting ``table``; assigns on first sight, *pinning*
        the assignment when ``pin`` is true.

        Read-side lookups pass ``pin=False``: policies are deterministic,
        so the answer is identical, but a SELECT on a misspelled or
        nonexistent table must not leave a permanent garbage entry in the
        map (only writes — which create tables — pin). System catalogs
        (``information_schema.*``) are exempt either way: every backend
        serves them, always."""
        key = normalize_table_name(table)
        with self._lock:
            return self._hosts_locked(key, pin)

    def _hosts_locked(self, key: str, pin: bool) -> FrozenSet[str]:
        if key.startswith(_SYSTEM_PREFIXES):
            return frozenset(self._universe)
        pinned = self._pinned.get(key)
        if pinned is not None:
            return pinned
        placed = self._policy.place(key, tuple(self._universe))
        if placed is None:
            # Unpinned ⇒ everyone, resolved fresh each call so later
            # backends are included (exact RAIDb-1 behaviour).
            return frozenset(self._universe)
        if pin:
            self._pinned[key] = placed
        return placed

    def unpin(self, tables: Iterable[str]) -> None:
        """Forget assignments for dropped tables, so the map stays
        bounded under table churn and a recreated table is placed fresh."""
        with self._lock:
            for table in tables:
                self._pinned.pop(normalize_table_name(table), None)

    def ensure_colocated(self, table: str, referenced: Iterable[str]) -> None:
        """Enforce that every host of ``table`` also hosts its
        ``REFERENCES`` targets — a replica holding the referencing table
        without the referenced one fails every insert's foreign-key
        check, which the scheduler's divergence logic would read as a
        dead replica.

        Policies whose host choice is arbitrary (hash spreads) are
        re-pointed: the new table is pinned onto the targets' common
        hosts. Operator-chosen assignments are never silently overridden
        — a conflict raises :class:`NoHostingBackendError` so the spec
        gets fixed instead."""
        common: Optional[FrozenSet[str]] = None
        for ref in referenced:
            ref_hosts = self.hosts(ref, pin=True)
            common = ref_hosts if common is None else common & ref_hosts
        if common is None:
            return
        key = normalize_table_name(table)
        with self._lock:
            if key.startswith(_SYSTEM_PREFIXES):
                return
            pinned = self._pinned.get(key)
            if pinned is not None:
                if pinned <= common:
                    return
                raise NoHostingBackendError(
                    f"table {key!r} is hosted by {sorted(pinned)} but its REFERENCES "
                    f"targets are only on {sorted(common)}; colocate them"
                )
            placed = self._policy.place(key, tuple(self._universe))
            if placed is None:
                # Hosted everywhere: every backend needs the targets.
                if common >= frozenset(self._universe):
                    return
                raise NoHostingBackendError(
                    f"table {key!r} would be fully replicated but its REFERENCES "
                    f"targets are only on {sorted(common)}; colocate them or "
                    "fully replicate the targets"
                )
            if placed <= common:
                self._pinned[key] = placed
                return
            if getattr(self._policy, "colocatable", False) and common:
                self._pinned[key] = frozenset(common)
                return
            raise NoHostingBackendError(
                f"placement puts table {key!r} on {sorted(placed)} but its REFERENCES "
                f"targets are only on {sorted(common)}; colocate them"
            )

    def backend_hosts(self, backend_name: str, table: str, pin: bool = False) -> bool:
        return backend_name in self.hosts(table, pin=pin)

    def hosting_all(self, tables: Iterable[str], backends: List["Backend"]) -> List["Backend"]:
        """Backends (of ``backends``) hosting *every* table in ``tables``
        — the read candidates; only a full replica qualifies for a
        cross-partition join. Never pins (reads must not leave garbage
        assignments for nonexistent tables)."""
        table_list = list(tables)
        if not table_list:
            return list(backends)
        host_sets = [self.hosts(table, pin=False) for table in table_list]
        return [
            backend
            for backend in backends
            if all(backend.name in hosts for hosts in host_sets)
        ]

    def hosting_any(self, tables: Iterable[str], backends: List["Backend"]) -> List["Backend"]:
        """Backends hosting *at least one* table in ``tables`` — the
        write fan-out: every replica of every written table must apply
        the write or it silently diverges. Pins: a routed write is what
        brings a table into existence."""
        table_list = list(tables)
        if not table_list:
            return list(backends)
        host_union = frozenset().union(*(self.hosts(table) for table in table_list))
        return [backend for backend in backends if backend.name in host_union]

    def tables_hosted_by(self, backend_name: str) -> FrozenSet[str]:
        """Pinned tables this backend hosts (unpinned tables are hosted
        by everyone and not enumerable here)."""
        with self._lock:
            return frozenset(
                table for table, hosts in self._pinned.items() if backend_name in hosts
            )

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            per_backend = {name: 0 for name in self._universe}
            for hosts in self._pinned.values():
                for host in hosts:
                    if host in per_backend:
                        per_backend[host] += 1
            return {
                "mode": self._policy.describe(),
                "full": isinstance(self._policy, FullReplicationPolicy) and not self._pinned,
                "backends": list(self._universe),
                "pinned_tables": len(self._pinned),
                "tables": {
                    table: sorted(hosts) for table, hosts in sorted(self._pinned.items())
                },
                "tables_per_backend": per_backend,
            }
