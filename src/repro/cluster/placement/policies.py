"""Placement policies: how a table it has never seen gets its hosts.

A policy answers one question — ``place(table, backend_names)`` — and the
:class:`~repro.cluster.placement.map.PlacementMap` records the answer the
first time a table is referenced, so assignments are stable for the
table's lifetime no matter how the backend set changes afterwards.

Policies return ``None`` to mean "every backend, dynamically": the map
does not pin such tables, so backends added later host them too. That is
how ``full`` keeps exact RAIDb-1 behaviour.

The :func:`create_placement` factory parses the string specs that
:class:`~repro.cluster.controller.ControllerConfig` (and anything
carrying options as strings, e.g. the URL layer) uses::

    full                                RAIDb-1, every table everywhere
    hash:2                              RAIDb-2, each table on 2 backends
    raidb0                              RAIDb-0, each table on 1 backend
    explicit:users=db1+db2,orders=db3   fixed per-table assignment
                                        (unlisted tables stay full)
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.errors import DriverError


class PlacementPolicy:
    """Strategy interface: pick the hosting backends for a new table."""

    name = "abstract"
    #: Whether the policy's host choice is arbitrary (a hash) rather than
    #: operator intent — arbitrary choices may be re-pointed to satisfy
    #: REFERENCES colocation (see PlacementMap.ensure_colocated).
    colocatable = False

    def place(self, table: str, backend_names: Sequence[str]) -> Optional[FrozenSet[str]]:
        """Hosts for ``table`` given the current backend universe.

        ``None`` means "all backends, unpinned" — the map re-resolves it
        on every lookup so later-added backends are included."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class FullReplicationPolicy(PlacementPolicy):
    """RAIDb-1: every table on every backend (the historical default)."""

    name = "full"

    def place(self, table: str, backend_names: Sequence[str]) -> Optional[FrozenSet[str]]:
        return None


def _stable_hash(table: str) -> int:
    """Deterministic across processes — ``hash()`` is salted per run, and
    a placement that moves between controller restarts would strand every
    table's data on backends that no longer host it."""
    return int.from_bytes(hashlib.md5(table.encode("utf-8")).digest()[:8], "big")


class HashSpreadPolicy(PlacementPolicy):
    """RAIDb-2: spread each table over ``replicas`` backends on a ring.

    Backends are sorted by name and the table's stable hash picks a start
    slot; the table lives on the next ``replicas`` backends around the
    ring. With fewer backends than replicas the table stays **unpinned**
    (hosted everywhere, dynamically): pinning the undersized ring would
    silently leave the table below its configured redundancy forever,
    since pinned assignments never move. It pins to exactly ``replicas``
    hosts the first time it is referenced with a big-enough universe —
    safe, because until then every backend was applying its writes.
    """

    name = "hash"
    colocatable = True

    def __init__(self, replicas: int = 2) -> None:
        if replicas < 1:
            raise DriverError("hash placement needs at least 1 replica per table")
        self.replicas = replicas

    def place(self, table: str, backend_names: Sequence[str]) -> Optional[FrozenSet[str]]:
        ring = sorted(backend_names)
        if len(ring) < self.replicas:
            return None
        start = _stable_hash(table) % len(ring)
        return frozenset(ring[(start + offset) % len(ring)] for offset in range(self.replicas))

    def describe(self) -> str:
        return f"{self.name}:{self.replicas}"


class Raidb0Policy(HashSpreadPolicy):
    """RAIDb-0: pure partitioning, one backend per table, no redundancy."""

    name = "raidb0"

    def __init__(self) -> None:
        super().__init__(replicas=1)

    def describe(self) -> str:
        return self.name


class ExplicitPolicy(PlacementPolicy):
    """Operator-chosen per-table assignment; unlisted tables stay full.

    The full-replication default for unlisted tables is deliberate: a
    table the operator forgot keeps RAIDb-1 semantics instead of landing
    on an arbitrary backend.
    """

    name = "explicit"

    def __init__(self, assignments: Dict[str, Iterable[str]]) -> None:
        # Import here: the classifier imports nothing from placement, but
        # keeping the module-level imports one-directional avoids cycles.
        from repro.cluster.classifier import normalize_table_name

        self._assignments: Dict[str, FrozenSet[str]] = {}
        for table, hosts in (assignments or {}).items():
            host_set = frozenset(str(host) for host in hosts)
            if not host_set:
                raise DriverError(f"explicit placement for table {table!r} names no backend")
            self._assignments[normalize_table_name(str(table))] = host_set

    @property
    def assignments(self) -> Dict[str, FrozenSet[str]]:
        return dict(self._assignments)

    def place(self, table: str, backend_names: Sequence[str]) -> Optional[FrozenSet[str]]:
        return self._assignments.get(table)

    def describe(self) -> str:
        spec = ",".join(
            f"{table}={'+'.join(sorted(hosts))}" for table, hosts in sorted(self._assignments.items())
        )
        return f"{self.name}:{spec}"


_FACTORIES: Dict[str, Callable[..., PlacementPolicy]] = {
    FullReplicationPolicy.name: FullReplicationPolicy,
    HashSpreadPolicy.name: HashSpreadPolicy,
    Raidb0Policy.name: Raidb0Policy,
    ExplicitPolicy.name: ExplicitPolicy,
}


def available_placements() -> List[str]:
    return sorted(_FACTORIES)


def parse_placement_spec(spec: str) -> PlacementPolicy:
    """Parse one placement spec string (see module docstring for forms)."""
    text = (spec or "").strip()
    if not text:
        return FullReplicationPolicy()
    head, _, argument = text.partition(":")
    name = head.strip().lower()
    if name == FullReplicationPolicy.name:
        return FullReplicationPolicy()
    if name == Raidb0Policy.name:
        return Raidb0Policy()
    if name == HashSpreadPolicy.name:
        if not argument:
            return HashSpreadPolicy()
        try:
            replicas = int(argument)
        except ValueError:
            raise DriverError(f"bad hash placement replica count {argument!r} in {spec!r}") from None
        return HashSpreadPolicy(replicas=replicas)
    if name == ExplicitPolicy.name:
        assignments: Dict[str, List[str]] = {}
        for clause in argument.split(","):
            clause = clause.strip()
            if not clause:
                continue
            table, separator, hosts = clause.partition("=")
            if not separator or not table.strip():
                raise DriverError(f"bad explicit placement clause {clause!r} in {spec!r}")
            assignments[table.strip()] = [
                host.strip() for host in hosts.split("+") if host.strip()
            ]
        if not assignments:
            raise DriverError(f"explicit placement {spec!r} assigns no tables")
        return ExplicitPolicy(assignments)
    raise DriverError(
        f"unknown placement {name!r} (available: {', '.join(available_placements())})"
    )


def create_placement(
    spec: Union[None, str, PlacementPolicy, "PlacementMap"] = None,
    backend_names: Iterable[str] = (),
) -> "PlacementMap":
    """Build a :class:`PlacementMap` from a spec string, a policy, an
    existing map (passed through), or ``None`` (full replication)."""
    from repro.cluster.placement.map import PlacementMap

    if isinstance(spec, PlacementMap):
        for name in backend_names:
            spec.add_backend(name)
        return spec
    if isinstance(spec, PlacementPolicy):
        policy = spec
    else:
        policy = parse_placement_spec(spec or "")
    return PlacementMap(policy=policy, backend_names=backend_names)
