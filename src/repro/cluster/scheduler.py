"""Request scheduling: the controller's routing hot path.

The scheduler is a thin orchestrator over five pluggable layers:

1. :mod:`repro.cluster.classifier` — token-level statement classification
   (read/write/transaction-control) and read/written table extraction,
2. :mod:`repro.cluster.placement` — the table-placement map (RAIDb-0/1/2)
   deciding which backends host which tables,
3. :mod:`repro.cluster.loadbalancer` — the read policy choosing one
   backend per read (round-robin, least-pending, weighted) among the
   placement's candidates,
4. :mod:`repro.cluster.broadcaster` — thread-pooled parallel execution of
   writes on the hosting backends with per-backend failure aggregation,
5. :mod:`repro.cluster.querycache` — an optional SELECT-result cache
   invalidated by the tables each write touches.

Under the default ``full`` placement (RAIDb-1) semantics are unchanged
from the original single-class scheduler: reads go to one enabled
backend, writes (and any statement inside an explicit transaction) go to
all of them. Under a partial placement (RAIDb-0/2) reads go to a backend
hosting *all* of the statement's read tables (only a full replica can
serve a cross-partition join — :class:`NoHostingBackendError` when none
exists), writes fan out to only the backends hosting the written tables,
and transaction control still broadcasts everywhere so the transaction
lifecycle stays global while each statement executes partition-local.
Statements whose table set is unknown (unparseable SQL) bypass placement
entirely: they broadcast to every enabled backend and flush the whole
query cache, exactly as under RAIDb-1.

Genuine writes are appended to the recovery log for backend resync
(replay is filtered per backend by each entry's written tables), and a
write that fails on one hosting backend marks that backend FAILED while
the statement still succeeds if any hosting replica accepted it.

Write ordering is **conflict-aware** (:mod:`repro.cluster.locks`): a
write acquires table-level locks covering every table it touches, so
statements on disjoint tables execute and broadcast in parallel — the
capacity a partial placement promises — while conflicting statements
serialise in acquisition order. A single-row INSERT/UPDATE/DELETE whose
primary-key value is fully resolved (schema consulted through the
``information_schema.columns`` catalog) narrows further to a **key-level
lock** ``(table, key)``, so writers on disjoint rows of one table
overlap too; range predicates, multi-row statements, unresolvable
parameters, PK reassignments and DDL all fall back to the table level.
Execution and log append happen under the same locks, so log-index
order equals execution order *per table* for table scopes — and for key
scopes the overlapped statements address disjoint rows, so they commute
and every replica converges regardless of interleaving; the recovery
log records per-table sequence numbers so replay can verify (and
backends can deduplicate, by exact sequence membership) per-table
order. Transaction control, statements with an unknown/unparseable
table set, resync replays, cold starts, snapshot dumps and placement
swaps all take the exclusive global mode — today's total-order
behaviour is the worst case, never violated.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cluster.backend import Backend, STATEMENT_FAULTS
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.classifier import (
    ClassifiedStatement,
    classify,
    is_transaction_control,
    is_write_statement,
    normalize_table_name,
)
from repro.cluster.loadbalancer import ReadPolicy, RoundRobinPolicy
from repro.cluster.locks import LockManager, LockScope
from repro.cluster.placement import NoHostingBackendError, PlacementMap, create_placement
from repro.cluster.querycache import QueryCache
from repro.cluster.recovery import (
    DatabaseDump,
    DatabaseDumper,
    GroupCommit,
    LogCompactedError,
    RecoveryLog,
)
from repro.cluster.recovery.logstore import LogEntry
from repro.errors import DriverError

__all__ = [
    "RequestScheduler",
    "SchedulerError",
    "WriteBatcher",
    "LockManager",
    "LockScope",
    "NoHostingBackendError",
    "is_write_statement",
    "is_transaction_control",
]


class SchedulerError(DriverError):
    """No backend available to execute the request."""


#: Statements eligible for a key-level lock scope, and the DDL commands
#: that can change a table's primary key (they invalidate the PK cache).
_KEYABLE_COMMANDS = ("INSERT", "UPDATE", "DELETE")
_SCHEMA_COMMANDS = ("CREATE", "DROP", "ALTER")

#: Sentinel for "no usable canonical key" (fall back to a table lock).
_NO_KEY = object()


def _scope_kind(spec: Any) -> str:
    """Human name of a lock-scope spec for trace/log attribution."""
    if spec is None:
        return "exclusive"
    if isinstance(spec, LockScope):
        return "key"
    return "table"


def _canonical_key(value: Any, data_type: str) -> Any:
    """Reduce one resolved predicate value to the canonical key the lock
    manager compares, honouring the engine's comparison coercions (see
    ``sqlengine.expressions._compare``): an INTEGER primary key matches
    ``id = 7``, ``id = 7.0`` and ``id = '7'`` against the same row, so
    all three must collide on the same lock key. Returns ``_NO_KEY``
    when the value cannot be proven to address one key — bools coerce
    *the column* instead of the value (``id = TRUE`` matches every
    nonzero id), NULL never matches, and exotic types fall back."""
    if value is None or isinstance(value, bool):
        return _NO_KEY
    data_type = (data_type or "").upper()
    if data_type in ("INTEGER", "BIGINT"):
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return int(value) if value.is_integer() else _NO_KEY
        if isinstance(value, str):
            # The engine compares str(row_value) == value: only the exact
            # decimal spelling matches a row ('07' matches nothing).
            try:
                parsed = int(value.strip())
            except ValueError:
                return _NO_KEY
            return parsed if str(parsed) == value.strip() else _NO_KEY
        return _NO_KEY
    if data_type == "VARCHAR":
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float)):
            # The engine stringifies the number side of a str/number
            # comparison, so 7 addresses the same row as '7'.
            return str(value)
        return _NO_KEY
    # DOUBLE/TIMESTAMP/BLOB/BOOLEAN keys: equality semantics are too
    # subtle to prove key identity — table lock.
    return _NO_KEY


class _BatchItem:
    """One writer's statement while it sits in a WriteBatcher queue."""

    __slots__ = (
        "sql",
        "params",
        "statement",
        "spec",
        "targets",
        "done",
        "result",
        "outcome",
        "durable_index",
        "error",
        "trace",
        "batch_meta",
    )

    def __init__(
        self,
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        spec: Any,
        targets: List[Backend],
        trace: Any = None,
    ) -> None:
        self.sql = sql
        self.params = params
        self.statement = statement
        self.spec = spec
        self.targets = targets
        self.done = False
        self.result: Optional[Tuple[List[str], List[Any], int]] = None
        self.outcome: Any = None
        self.durable_index: Optional[int] = None
        self.error: Optional[Exception] = None
        #: Optional repro.obs Trace of this writer's statement. The round
        #: leader's trace receives the execute/log_append spans; riders
        #: record a batch_wait span attributed via ``batch_meta``.
        self.trace = trace
        #: Set by the round: ``(leader_trace_id, batch_size)``.
        self.batch_meta: Optional[Tuple[Optional[str], int]] = None


class WriteBatcher:
    """Coalesces concurrent auto-commit writers into one broadcast round
    trip — the execution-side mirror of :class:`GroupCommit`.

    Writers whose placement-resolved replica sets match queue under one
    *group key* (the sorted target names); the first writer to find the
    group leaderless elects itself leader, drains the queue and runs the
    whole batch through ``WriteBroadcaster.broadcast_batch`` +
    ``RecoveryLog.append_batch`` — one fan-out and one log append cover
    every writer in the group, and (under group commit) one fsync.
    Writers arriving while a round is in flight queue up for the next
    leader, so batching *emerges from broadcast latency* exactly as
    group-commit batching emerges from fsync latency; ``window_s`` adds
    an optional fixed collection window on top.

    Every queued writer still holds its own lock scope for the whole
    round (the scopes are pairwise disjoint, or they could not be
    concurrent), so the append order within a batch is an execution
    order no conflicting statement can interleave — per-table log order
    is preserved by construction: two same-table statements can share a
    round only under disjoint key scopes, and the batch applies them in
    append order on every replica. Deadlock-free: the leader acquires no
    lock scopes, and an exclusive acquirer (BEGIN, resync, DDL with an
    unknown table set) simply waits for the round's scopes to drain."""

    def __init__(self, scheduler: "RequestScheduler", window_s: float = 0.0, max_batch: int = 64) -> None:
        self._scheduler = scheduler
        self._window_s = max(0.0, window_s)
        self._max_batch = max(1, max_batch)
        self._cond = threading.Condition()
        self._queues: Dict[Tuple[str, ...], List[_BatchItem]] = {}
        self._leading: Set[Tuple[str, ...]] = set()
        # Counters guarded by _cond.
        self.rounds = 0
        self.batched_statements = 0
        self.max_batch_size = 0

    def run(
        self,
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        spec: Any,
        targets: List[Backend],
        trace: Any = None,
    ) -> Tuple[Optional[Tuple[List[str], List[Any], int]], Any, Optional[int]]:
        """Queue one statement and return its
        ``(result, outcome, durable_index)`` once a round executed it —
        either by leading a round or by riding a sibling leader's.

        Loops until this item's round actually ran: when more than
        ``max_batch`` writers queue behind one leader, the overflow —
        possibly including the next elected leader's own item — stays
        queued for a follow-up round, so election must retry rather than
        assume one round covered the electing writer.

        With ``trace`` set, a writer that rode a sibling's round records
        a ``batch_wait`` span attributed to the leader's trace id and the
        round's batch size; a writer that led gets the round's
        ``execute``/``log_append`` spans instead (recorded by the round
        itself)."""
        item = _BatchItem(sql, params, statement, spec, targets, trace=trace)
        key = tuple(sorted(backend.name for backend in targets))
        queued_at = time.monotonic() if trace is not None else 0.0
        led = False
        with self._cond:
            self._queues.setdefault(key, []).append(item)
        while True:
            with self._cond:
                while not item.done and key in self._leading:
                    self._cond.wait()
                if item.done:
                    break
                self._leading.add(key)
            led = True
            self._lead(key, item)
            if item.done:
                break
        if trace is not None and not led:
            leader_trace_id, batch_size = item.batch_meta or (None, 0)
            trace.record(
                "batch_wait",
                queued_at,
                time.monotonic(),
                leader_trace=leader_trace_id,
                batch_size=batch_size,
            )
        if item.error is not None:
            raise item.error
        return item.result, item.outcome, item.durable_index

    def _lead(self, key: Tuple[str, ...], leader: Optional[_BatchItem] = None) -> None:
        batch: List[_BatchItem] = []
        try:
            if self._window_s > 0.0:
                # Optional fixed collection window; with the default 0 the
                # batch is whatever queued while the previous round was in
                # flight. The leader's trace gets the window as a
                # ``batch_wait`` span (role=leader) so the sleep doesn't
                # read as unattributed latency — riders record theirs in
                # :meth:`run`.
                leader_trace = leader.trace if leader is not None else None
                if leader_trace is not None:
                    leader_trace.begin("batch_wait", role="leader")
                time.sleep(self._window_s)
                if leader_trace is not None:
                    leader_trace.end("batch_wait")
            with self._cond:
                queued = self._queues.pop(key, [])
                if len(queued) > self._max_batch:
                    self._queues[key] = queued[self._max_batch :]
                    queued = queued[: self._max_batch]
                batch = queued
                self.rounds += 1
                self.batched_statements += len(batch)
                self.max_batch_size = max(self.max_batch_size, len(batch))
            try:
                self._scheduler._execute_batch_round(batch, leader)
            except Exception as exc:  # noqa: BLE001 - delivered per writer
                for item in batch:
                    if item.error is None:
                        item.error = exc
        finally:
            with self._cond:
                for item in batch:
                    item.done = True
                self._leading.discard(key)
                self._cond.notify_all()

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            rounds = self.rounds
            batched = self.batched_statements
            return {
                "rounds": rounds,
                "batched_statements": batched,
                "max_batch_size": self.max_batch_size,
                "avg_batch_size": round(batched / rounds, 2) if rounds else 0.0,
                "window_s": self._window_s,
                "max_batch": self._max_batch,
            }


class RequestScheduler:
    """Routes statements to backends according to the placement map
    (RAIDb-1 full replication by default; RAIDb-0/2 when configured)."""

    def __init__(
        self,
        backends: List[Backend],
        recovery_log: RecoveryLog,
        read_policy: Optional[ReadPolicy] = None,
        query_cache: Optional[QueryCache] = None,
        broadcaster: Optional[WriteBroadcaster] = None,
        placement: Optional[PlacementMap] = None,
        lock_manager: Optional[LockManager] = None,
        key_level_locking: bool = True,
        primary_keys: Optional[Dict[str, Tuple[str, str]]] = None,
        group_commit: Optional[GroupCommit] = None,
        write_batching: bool = False,
        write_batch_window_s: float = 0.0,
    ) -> None:
        self._backends = list(backends)
        self._recovery_log = recovery_log
        self._policy = read_policy or RoundRobinPolicy()
        self._cache = query_cache
        self._broadcaster = broadcaster or WriteBroadcaster(parallel=True)
        self._placement = placement or PlacementMap()
        for backend in self._backends:
            self._placement.add_backend(backend.name)
        self._lock = threading.Lock()
        # Conflict-aware write ordering: each broadcast holds table-level
        # locks covering the tables it touches (disjoint writes run in
        # parallel), or the manager's exclusive mode when only total
        # order is safe — transaction control, unknown table sets,
        # resync/cold-start/dump/placement swaps. Execution and log
        # append happen under the same locks, so log order equals
        # execution order per table.
        self._locks = lock_manager or LockManager()
        # Key-level lock scopes: a single-row DML whose primary-key value
        # is fully resolved locks (table, key) instead of the whole
        # table, so disjoint-row writers on one table run in parallel.
        # Off → every write takes (at least) a table lock as before.
        self._key_level_locking = key_level_locking
        # table → (pk_column, declared data_type, 1-based ordinal) or
        # None when the table has no single-column PK (or is unknown).
        # Resolved lazily from information_schema.columns and invalidated
        # by DDL *inside the DDL's own lock scope*, which is what makes
        # the key writers' revalidate-after-acquire loop sound.
        # ``primary_keys`` pre-seeds entries (table → (column, type)) for
        # environments whose backends expose no catalog (experiments).
        self._pk_lock = threading.Lock()
        self._pk_cache: Dict[str, Optional[Tuple[str, str, Optional[int]]]] = {}
        self._pk_overrides: Dict[str, Tuple[str, str, Optional[int]]] = {
            normalize_table_name(table): (column.lower(), data_type, None)
            for table, (column, data_type) in (primary_keys or {}).items()
        }
        # Scheduler-internal accounting shared by concurrent writers
        # (transaction state, log append + checkpoint advancement).
        # Always acquired *after* the lock manager's scope and never
        # held across a broadcast, so it cannot deadlock against it.
        self._state_lock = threading.Lock()
        # Tables written inside open transactions (guarded by
        # _state_lock). A concurrent autocommit read can cache the
        # uncommitted state, and a later ROLLBACK would leave that entry
        # stale forever — so every COMMIT/ROLLBACK flushes these from the
        # cache. The set is only cleared once *no* transaction remains
        # open: the scheduler cannot tell whose transaction just ended,
        # so it over-invalidates rather than let one session's COMMIT
        # erase another session's tracking.
        self._tx_dirty_tables: set = set()
        self._tx_dirty_all = False
        self._open_transactions = 0
        #: Session that opened the currently-open transaction (best
        #: effort — callers that don't thread a session id leave None).
        #: Surfaced in the disable/enable refusal message so an operator
        #: can find the offending client instead of guessing.
        self._tx_owner: Optional[str] = None
        # Writes executed inside the open transaction, deferred from the
        # recovery log until COMMIT: a rolled-back write must never be
        # replayed into a recovering backend, and a backend that failed
        # mid-transaction must replay the whole transaction at resync.
        # A single buffer is sound because the engine admits one open
        # transaction at a time (a second BEGIN is rejected); if backends
        # ever gain per-session connections this needs keying by session.
        # Each element is (sql, params, write_tables, lock_keys) —
        # lock_keys being the (table, key) pairs the statement's key
        # scope held (empty under a table scope), kept for operator
        # triage: the disable/enable refusal can say which rows the open
        # transaction pinned, not just which tables.
        self._tx_buffer: List[
            Tuple[str, Dict[str, Any], FrozenSet[str], FrozenSet[Tuple[str, Any]]]
        ] = []
        # Group commit (docs/wire.md): when set, appends go to the store
        # without their own fsync and each writer calls
        # group_commit.wait_durable(index) *after* releasing its lock
        # scope — one fsync covers every writer in the group, and no
        # reply returns before its entry is durable.
        self._group_commit = group_commit
        # Write-path batching, the execution-side mirror of group commit:
        # eligible concurrent auto-commit writers coalesce into one
        # broadcast round trip + one batch log append (see WriteBatcher).
        # Off (None) keeps the per-statement path byte-identical.
        self._write_batcher = (
            WriteBatcher(self, window_s=write_batch_window_s) if write_batching else None
        )
        # True while a resync replay or dump restore holds the write lock:
        # the controller answers write traffic with ``controller_recovering``
        # so failover-capable drivers retry on a sibling instead of
        # queueing behind the replay.
        self._resyncing = False
        self.cold_starts = 0

    # -- configuration -----------------------------------------------------------

    @property
    def open_transactions(self) -> int:
        """Transactions currently open somewhere on the cluster."""
        with self._state_lock:
            return self._open_transactions

    @property
    def lock_manager(self) -> LockManager:
        return self._locks

    def _open_transaction_detail(self) -> str:
        """Who holds the open transaction and what it wrote so far —
        the operator-triage detail for disable/enable refusals."""
        with self._state_lock:
            owner = self._tx_owner or "unknown"
            tables = sorted({
                table for _, _, write_tables, _ in self._tx_buffer for table in write_tables
            })
            keys = sorted(
                {pair for _, _, _, lock_keys in self._tx_buffer for pair in lock_keys},
                key=repr,
            )
        described = ", ".join(tables) if tables else "none recorded yet"
        if keys:
            described += (
                "; keyed rows: "
                + ", ".join(f"{table}[{key!r}]" for table, key in keys)
            )
        return f"session {owner}, open-transaction tables: {described}"

    @property
    def resync_in_progress(self) -> bool:
        """Whether a resync/cold-start currently holds the write path."""
        return self._resyncing

    @staticmethod
    def _backend_checkpoint_name(backend: Backend) -> str:
        return f"backend:{backend.name}"

    def checkpoint_and_disable(self, backend: Backend) -> int:
        """Disable a backend around a consistent checkpoint, atomically
        with respect to the write path: no broadcast is in flight while
        the checkpoint is recorded, so it reflects exactly the writes the
        backend has applied. The checkpoint is registered by name so log
        compaction keeps the entries this backend still needs to replay."""
        with self._locks.exclusive():
            if backend.enabled:
                checkpoint = self._recovery_log.last_index
            else:
                # Already DISABLED/FAILED: the backend stopped applying
                # writes at its *existing* checkpoint. Re-recording the
                # current head would skip every write it missed since —
                # the next resync would silently leave it diverged.
                checkpoint = backend.checkpoint_index
            backend.disable(checkpoint)
            self._recovery_log.checkpoint(
                self._backend_checkpoint_name(backend), checkpoint, overwrite=True
            )
            return checkpoint

    def resync_and_enable(self, backend: Backend, dumper: Optional[DatabaseDumper] = None) -> int:
        """Replay a disabled backend's missed writes and re-enable it,
        atomically with respect to the write path.

        Holding the exclusive write lock for the whole
        snapshot+replay+enable means no write can land between the log
        snapshot and the ENABLED flip (it would be applied to the other
        replicas only and never replayed), and no transaction can open
        mid-resync — a backend joining mid-transaction would apply the
        transaction's remaining writes as autocommit, beyond ROLLBACK's
        reach.

        When compaction already truncated entries this backend needs, a
        ``dumper`` turns the replay into a dump-based cold start from a
        healthy sibling; without one the caller gets a SchedulerError.
        Returns how many log entries were replayed.
        """
        with self._locks.exclusive():
            if self.open_transactions:
                raise SchedulerError(
                    f"cannot enable backend {backend.name!r} while a transaction "
                    f"is open ({self._open_transaction_detail()}); retry after it ends"
                )
            self._resyncing = True
            try:
                try:
                    entries = self._recovery_log.entries_after(backend.checkpoint_index)
                except LogCompactedError as exc:
                    if dumper is None:
                        raise SchedulerError(
                            f"cannot resync backend {backend.name!r}: {exc}"
                        ) from exc
                    replayed = self._cold_start_locked(backend, dumper)
                else:
                    replayed = backend.resync(
                        entries, entry_filter=self._replay_filter(backend)
                    )
            finally:
                self._resyncing = False
            self._recovery_log.release_checkpoint(self._backend_checkpoint_name(backend))
            if self._cache is not None:
                # The re-enabled backend immediately serves reads, and its
                # rows were written by replay/restore — never observed by
                # the cache's invalidation clock. Flush so no entry cached
                # while it was out of rotation survives as stale.
                self._cache.clear()
            return replayed

    def bootstrap_backend(self, backend: Backend, dumper: Optional[DatabaseDumper] = None) -> int:
        """Add a brand-new backend to the running cluster by cold-starting
        it from a dump of a healthy sibling (no full-history replay).

        Atomic with the write path: the dump, the restore and the ENABLED
        flip happen under the write lock, so the new replica joins exactly
        at the log head. Returns the number of restore statements run."""
        dumper = dumper or DatabaseDumper()
        with self._locks.exclusive():
            if self.open_transactions:
                raise SchedulerError(
                    f"cannot bootstrap backend {backend.name!r} while a transaction "
                    f"is open ({self._open_transaction_detail()}); retry after it ends"
                )
            # Join the placement universe first: the cold start below asks
            # the map which tables this backend hosts, and unpinned
            # (fully replicated) tables must already count it as a host.
            self._placement.add_backend(backend.name)
            self._resyncing = True
            try:
                statements = self._cold_start_locked(backend, dumper, count_statements=True)
            except Exception:
                # The backend never joined: evict it from the placement
                # universe, or future tables could be pinned to a ghost
                # and become permanently unhostable.
                self._placement.remove_backend(backend.name)
                raise
            finally:
                self._resyncing = False
            with self._lock:
                if backend not in self._backends:
                    self._backends.append(backend)
            if self._cache is not None:
                self._cache.clear()
            return statements

    def _replay_filter(self, backend: Backend) -> Optional[Callable[[LogEntry], bool]]:
        """Per-entry replay predicate for ``backend`` under the current
        placement (None under full replication — replay everything).

        An entry is replayed when the backend hosts any of the tables it
        writes; entries with an *unknown* table set (unparseable SQL) are
        conservatively replayed everywhere, mirroring how the write path
        broadcast them everywhere in the first place. Skipped entries
        still advance the backend's checkpoint (see Backend.resync)."""
        placement = self._placement
        if placement.is_full:
            return None

        def entry_filter(entry: LogEntry) -> bool:
            # Entries carry their write tables since the per-table
            # ordering model; re-classify only legacy entries that
            # predate it (e.g. an old durable log directory).
            tables = entry.write_tables or classify(entry.sql).write_tables
            if not tables:
                return True
            return any(placement.backend_hosts(backend.name, table) for table in tables)

        return entry_filter

    def _cold_start_locked(
        self, backend: Backend, dumper: DatabaseDumper, count_statements: bool = False
    ) -> int:
        """Dump healthy siblings into ``backend`` and enable it.

        Caller holds the write lock, so the dump is consistent and the
        tail replay after it is empty by construction — the machinery
        still runs so offline dumps (taken earlier, with writes landing
        since) follow the exact same path. Under full replication any
        single sibling carries everything; under a partial placement the
        dump is assembled table by table from backends hosting each of
        the tables the new replica will host, and the tail replay is
        filtered the same way the write path would have routed it."""
        sources = [
            candidate for candidate in self.enabled_backends() if candidate is not backend
        ]
        if not sources:
            raise SchedulerError(
                f"no healthy backend available to dump for cold-starting {backend.name!r}"
            )
        checkpoint_index = self._recovery_log.last_index
        wipe_filter = None
        if self._placement.is_full:
            dump = dumper.dump(
                sources[0].execute,
                checkpoint_index=checkpoint_index,
                source=sources[0].name,
            )
        else:
            dump, keep_local = self._partial_dump_locked(
                backend, sources, dumper, checkpoint_index
            )
            if keep_local:
                # Tables only this backend hosts exist nowhere else: no
                # sibling can re-supply them, so the local copy is the
                # authoritative one and must survive the restore's wipe.
                # It is current — while the sole host was out of rotation
                # every write to those tables was refused
                # (NoHostingBackendError), so there is nothing to miss.
                wipe_filter = (
                    lambda qualified: normalize_table_name(qualified) not in keep_local
                )
        statements = backend.initialize_from_dump(dump, dumper, wipe_filter=wipe_filter)
        replayed = backend.resync(
            self._recovery_log.entries_after(backend.checkpoint_index),
            entry_filter=self._replay_filter(backend),
        )
        self.cold_starts += 1
        return statements if count_statements else replayed

    def _partial_dump_locked(
        self,
        backend: Backend,
        sources: List[Backend],
        dumper: DatabaseDumper,
        checkpoint_index: int,
    ) -> Tuple[DatabaseDump, set]:
        """Assemble a table-subset dump of the tables ``backend`` hosts,
        pulling each table from an enabled backend hosting it (one
        sibling rarely carries a partial replica's whole subset).

        Returns ``(dump, keep_local)``: tables the backend *solely* hosts
        cannot be dumped — the recovering backend's own copy is the only
        one that ever existed and the caller must preserve it. A table
        the backend co-hosts whose every other host is down is refused
        outright: its siblings may hold committed writes this backend
        missed and the compacted log can no longer replay, so preserving
        the local copy would be silent staleness and wiping it data loss
        — the operator must recover one of the other hosts first."""
        placement = self._placement
        # Which enabled sibling actually *has* each table: pick dump
        # sources by catalog contents, not placement membership alone — a
        # placement host that never received the data (e.g. hosts moved
        # by set_placement) would silently contribute an empty piece.
        catalogs: Dict[str, set] = {
            source.name: {
                normalize_table_name(qualified)
                for qualified in dumper.list_tables(source.execute)
            }
            for source in sources
        }
        table_sources: Dict[str, Backend] = {}
        for source in sources:
            for key in catalogs[source.name]:
                if key in table_sources:
                    continue
                if not placement.backend_hosts(backend.name, key):
                    continue
                holder = next(
                    (
                        candidate
                        for candidate in sources
                        if key in catalogs[candidate.name]
                        and placement.backend_hosts(candidate.name, key)
                    ),
                    # No placement host carries it: fall back to whoever
                    # has the data (its catalog listed it) — stale-host
                    # data beats no data after a placement change.
                    source,
                )
                table_sources[key] = holder
        keep_local = set()
        for qualified in dumper.list_tables(backend.execute):
            key = normalize_table_name(qualified)
            if key in table_sources or not placement.backend_hosts(backend.name, key):
                continue
            if placement.hosts(key, pin=False) == frozenset({backend.name}):
                # Strictly sole-hosted: no other backend ever accepted a
                # write to it, so the local copy is current by
                # construction.
                keep_local.add(key)
            elif any(placement.backend_hosts(s.name, key) for s in sources):
                # Another host is enabled but its catalog lacks the
                # table: it was dropped cluster-wide while this backend
                # was out — let the wipe remove the local copy too.
                continue
            else:
                raise SchedulerError(
                    f"cannot cold-start backend {backend.name!r}: table {key!r} is "
                    f"hosted by {sorted(placement.hosts(key, pin=False))} but no "
                    "other host is enabled, and its missed writes may be "
                    "unreplayable — recover one of the other hosts first"
                )
        pieces = []
        for source in sources:
            wanted = {
                table for table, holder in table_sources.items() if holder is source
            }
            if not wanted:
                continue
            pieces.append(
                dumper.dump(
                    source.execute,
                    checkpoint_index=checkpoint_index,
                    source=source.name,
                    table_filter=lambda qualified, wanted=wanted: normalize_table_name(
                        qualified
                    )
                    in wanted,
                )
            )
        dump = dumper.merge(pieces, checkpoint_index=checkpoint_index)
        if dump.source is None:
            dump.source = sources[0].name
        return dump, keep_local

    def create_dump(
        self,
        checkpoint_name: Optional[str] = None,
        dumper: Optional[DatabaseDumper] = None,
        table_filter: Optional[Callable[[str], bool]] = None,
    ):
        """Snapshot one healthy backend under the write lock and pin the
        snapshot's log position under a named checkpoint, so compaction
        cannot truncate the tail a consumer will replay after restoring
        the dump. Release the checkpoint once every consumer cold-started.
        ``table_filter`` restricts the snapshot to a table subset (for
        provisioning partial replicas from an operator-driven dump)."""
        dumper = dumper or DatabaseDumper()
        with self._locks.exclusive():
            source = next(iter(self.enabled_backends()), None)
            if source is None:
                raise SchedulerError("no enabled backend available to dump")
            index = self._recovery_log.last_index
            name = checkpoint_name or f"dump-{index}"
            self._recovery_log.checkpoint(name, index, overwrite=True)
            return dumper.dump(
                source.execute,
                checkpoint_index=index,
                checkpoint_name=name,
                source=source.name,
                table_filter=table_filter,
            )

    @property
    def placement(self) -> PlacementMap:
        return self._placement

    def set_placement(self, placement: Any) -> PlacementMap:
        """Swap the placement map (spec string, policy or PlacementMap).

        Atomic with the write path so no broadcast is routed half by the
        old map and half by the new one. The query cache is flushed:
        routing changed under it, and entries cached from a replica that
        no longer serves their tables should not linger. Placement does
        **not** move existing data — change it before the tables it
        governs are created, or cold-start the affected replicas."""
        new_map = create_placement(
            placement, backend_names=[backend.name for backend in self.backends()]
        )
        with self._locks.exclusive():
            self._placement = new_map
            if self._cache is not None:
                self._cache.clear()
        return new_map

    @property
    def read_policy(self) -> ReadPolicy:
        return self._policy

    @property
    def query_cache(self) -> Optional[QueryCache]:
        return self._cache

    @property
    def broadcaster(self) -> WriteBroadcaster:
        return self._broadcaster

    # -- backend set -------------------------------------------------------------

    def backends(self) -> List[Backend]:
        with self._lock:
            return list(self._backends)

    def enabled_backends(self) -> List[Backend]:
        return [backend for backend in self.backends() if backend.enabled]

    def add_backend(self, backend: Backend) -> None:
        with self._lock:
            self._backends.append(backend)
        self._placement.add_backend(backend.name)

    # -- key-level lock scopes ----------------------------------------------------

    def _primary_key(self, table: str) -> Optional[Tuple[str, str, Optional[int]]]:
        """``(column, data_type, ordinal)`` of ``table``'s single-column
        primary key, or None. Cached; DDL invalidates (see
        :meth:`_invalidate_pk_cache`)."""
        override = self._pk_overrides.get(table)
        if override is not None:
            return override
        with self._pk_lock:
            if table in self._pk_cache:
                return self._pk_cache[table]
        resolved = self._resolve_primary_key(table)
        with self._pk_lock:
            self._pk_cache[table] = resolved
        return resolved

    def _resolve_primary_key(self, table: str) -> Optional[Tuple[str, str, Optional[int]]]:
        """Ask the schema catalog for ``table``'s primary key. Any
        failure — no enabled backend, a backend without the catalog, a
        composite or absent PK — resolves to None: the caller falls back
        to a table lock, which is always safe."""
        backend = next(iter(self.enabled_backends()), None)
        if backend is None:
            return None
        try:
            _, rows, _ = backend.execute(
                "SELECT table_name, table_schema, column_name, ordinal_position, "
                "data_type, is_primary_key FROM information_schema.columns",
                None,
                track=False,
            )
            pk_columns = []
            for table_name, table_schema, column_name, ordinal, data_type, is_pk in rows:
                qualified = (
                    f"{table_schema}.{table_name}" if table_schema else str(table_name)
                )
                if normalize_table_name(qualified) != table:
                    continue
                if bool(is_pk):
                    pk_columns.append(
                        (str(column_name).lower(), str(data_type), int(ordinal))
                    )
        except Exception:
            return None
        if len(pk_columns) != 1:
            # No PK or a composite PK: one lock key cannot stand for the
            # row identity the engine enforces.
            return None
        return pk_columns[0]

    def _invalidate_pk_cache(self, tables: Optional[Any]) -> None:
        """Forget cached PKs for ``tables`` (or everything when the DDL's
        table set is unknown). Called while the DDL still holds its lock
        scope, which conflicts with every key lock on those tables — so
        a key writer either finished before the DDL or re-resolves after
        it (see the revalidation loop in :meth:`_execute_broadcast`)."""
        with self._pk_lock:
            if tables:
                for table in tables:
                    self._pk_cache.pop(table, None)
            else:
                self._pk_cache.clear()

    @staticmethod
    def _key_expr_for(
        statement: ClassifiedStatement, pk_column: str, pk_ordinal: Optional[int]
    ):
        """The classifier-extracted expression giving the PK value this
        statement addresses, or None when the statement cannot be proven
        single-key (range/absent predicate, multi-row INSERT, PK
        reassignment)."""
        if statement.command == "INSERT":
            if statement.insert_values is None:
                return None
            if statement.insert_columns is not None:
                try:
                    position = statement.insert_columns.index(pk_column)
                except ValueError:
                    # PK not in the column list: it takes a DEFAULT the
                    # classifier cannot see.
                    return None
            elif pk_ordinal is not None:
                position = pk_ordinal - 1
            else:
                return None
            if position >= len(statement.insert_values):
                return None
            return statement.insert_values[position]
        if statement.command == "UPDATE" and pk_column in statement.set_columns:
            # Reassigning the PK moves the row to a second key; a single
            # key lock would not cover the destination.
            return None
        for column, expr in statement.where_equalities:
            if column == pk_column:
                return expr
        return None

    def _lock_scope_spec(
        self, statement: ClassifiedStatement, params: Optional[Dict[str, Any]]
    ):
        """What this statement's broadcast must lock: a key-level
        :class:`LockScope` when the statement provably touches one row of
        one table and its PK value resolves, the classifier's table set
        otherwise, None (exclusive) when even the table set is unknown."""
        tables = statement.lock_tables
        if tables is None:
            return None
        if (
            not self._key_level_locking
            or statement.command not in _KEYABLE_COMMANDS
            or len(statement.write_tables) != 1
            or tables != statement.write_tables
        ):
            # Reads/REFERENCES alongside the write keep table locks: the
            # key only covers the written row, not the observed tables.
            return tables
        table = next(iter(tables))
        resolved = self._primary_key(table)
        if resolved is None:
            return tables
        pk_column, data_type, ordinal = resolved
        expr = self._key_expr_for(statement, pk_column, ordinal)
        if expr is not None:
            key = self._resolve_lock_key(expr, params, data_type)
            if key is _NO_KEY:
                return tables
            return LockScope(keys=frozenset({(table, key)}))
        exprs = self._key_exprs_from_in_list(statement, pk_column)
        if exprs is None:
            return tables
        keys = set()
        for element in exprs:
            key = self._resolve_lock_key(element, params, data_type)
            if key is _NO_KEY:
                # One unresolvable element poisons the whole list: the
                # statement may touch a row no listed key covers.
                return tables
            keys.add((table, key))
        return LockScope(keys=frozenset(keys))

    @staticmethod
    def _resolve_lock_key(expr: Any, params: Optional[Dict[str, Any]], data_type: str) -> Any:
        """Resolve one classifier KeyExpr to a canonical lock key, or
        ``_NO_KEY`` when it cannot be proven to address one row."""
        expr_kind, payload = expr
        if expr_kind == "value":
            value = payload
        elif expr_kind == "param":
            # Positional params ("?") can't be matched to a value here.
            if payload == "?" or not params or payload not in params:
                return _NO_KEY
            value = params[payload]
        else:  # opaque
            return _NO_KEY
        return _canonical_key(value, data_type)

    @staticmethod
    def _key_exprs_from_in_list(
        statement: ClassifiedStatement, pk_column: str
    ) -> Optional[Tuple[Any, ...]]:
        """The ``pk IN (...)`` elements bounding an UPDATE/DELETE's touched
        keys, or None. Sound because an AND-conjunct IN list means every
        touched row's PK is among the listed values; a PK-reassigning
        UPDATE moves rows to a key *outside* the list, so it never
        qualifies (INSERT has no WHERE at all)."""
        if statement.command not in ("UPDATE", "DELETE"):
            return None
        if statement.command == "UPDATE" and pk_column in statement.set_columns:
            return None
        for column, exprs in statement.where_in_lists:
            if column == pk_column:
                return exprs
        return None

    # -- routing -----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        in_transaction: bool = False,
        session_id: Optional[str] = None,
        trace: Any = None,
    ) -> Tuple[List[str], List[Any], int]:
        """Execute one statement with replication semantics.

        ``session_id`` (optional) names the client session for
        observability: a BEGIN records it as the open transaction's
        owner, so a refused disable/enable can tell the operator *which*
        session to chase instead of just "a transaction is open".

        ``trace`` (optional :class:`repro.obs.Trace`) receives stage
        spans — cache/lock/execute/batch_wait/log_append/fsync_wait —
        as the statement moves through the pipeline; None (the default,
        and the only value on the untraced hot path) times nothing."""
        enabled = self.enabled_backends()
        if not enabled:
            raise SchedulerError("no enabled backend available")
        statement = classify(sql)
        if statement.is_read and not in_transaction:
            return self._execute_read(enabled, sql, params, statement, trace)
        return self._execute_broadcast(
            enabled, sql, params, statement, in_transaction, session_id=session_id, trace=trace
        )

    def _read_candidate_filter(
        self, enabled: List[Backend], statement: ClassifiedStatement
    ) -> Optional[Callable[[Backend], bool]]:
        """Placement restriction for one read, or None when any enabled
        backend may serve it.

        A read must land on a backend hosting *all* of its tables — for a
        cross-partition join that is only a full replica. A statement
        with an unknown/empty table set bypasses placement (any enabled
        backend), matching the write path's conservative broadcast.
        Raises :class:`NoHostingBackendError` when no enabled backend
        qualifies."""
        placement = self._placement
        if placement.is_full or not statement.read_tables:
            return None
        candidates = placement.hosting_all(statement.read_tables, enabled)
        if not candidates:
            raise NoHostingBackendError(
                f"no enabled backend hosts all of {sorted(statement.read_tables)}; "
                "cross-partition reads need a full replica"
            )
        names = {candidate.name for candidate in candidates}
        return lambda backend: backend.name in names

    def _execute_read(
        self,
        enabled: List[Backend],
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        trace: Any = None,
    ) -> Tuple[List[str], List[Any], int]:
        cache = self._cache
        use_cache = cache is not None and statement.cacheable
        if use_cache:
            if trace is None:
                cached = cache.get(sql, params)
            else:
                with trace.span("cache") as cache_span:
                    cached = cache.get(sql, params)
                    cache_span.set(hit=cached is not None)
            if cached is not None:
                return cached
            stamp = cache.stamp()
            # Re-snapshot *after* taking the stamp: a backend that failed
            # (and so missed) a concurrent write is excluded here, and one
            # that fails later implies the write's post-broadcast
            # invalidation postdates our stamp — either way pre-write data
            # cannot be cached as fresh.
            enabled = self.enabled_backends()
            if not enabled:
                raise SchedulerError("no enabled backend available")
        backend = self._policy.choose(
            enabled, candidate_filter=self._read_candidate_filter(enabled, statement)
        )
        backend.begin_request()
        if trace is not None:
            trace.begin("execute", backend=backend.name)
        try:
            result = backend.execute(sql, params)
        finally:
            backend.finish_request()
            if trace is not None:
                trace.end("execute")
        if use_cache:
            cache.put(sql, params, statement.read_tables, result, stamp=stamp)
        return result

    def _write_targets(
        self, enabled: List[Backend], statement: ClassifiedStatement
    ) -> List[Backend]:
        """Which enabled backends one broadcast statement goes to.

        Everything under full replication, and always everything for
        transaction control (BEGIN/COMMIT/ROLLBACK keep the transaction
        lifecycle global — non-hosting backends just open and commit an
        empty transaction) and for statements with an unknown table set
        (the conservative bypass). A genuine write goes to every backend
        hosting *any* written table — fewer would silently diverge a
        replica of a written table; its read tables must be colocated on
        those backends or the statement has nowhere it can run correctly.
        An in-transaction read executes on the backends hosting all of
        its tables."""
        placement = self._placement
        if placement.is_full or statement.is_transaction_control:
            return enabled
        if statement.is_read:
            # In-transaction read: routed through the broadcast path so it
            # observes the transaction's uncommitted state.
            if not statement.read_tables:
                return enabled
            targets = placement.hosting_all(statement.read_tables, enabled)
            if not targets:
                raise NoHostingBackendError(
                    f"no enabled backend hosts all of {sorted(statement.read_tables)}; "
                    "cross-partition reads need a full replica"
                )
            return targets
        if not statement.write_tables:
            return enabled
        if statement.referenced_tables:
            # DDL with foreign keys: every host of the new table must
            # host the REFERENCES targets, or per-row FK checks fail on
            # some replicas and read as divergence. Hash placements are
            # re-pointed onto the targets' hosts; operator-chosen
            # assignments that conflict raise instead.
            for table in statement.write_tables:
                placement.ensure_colocated(table, statement.referenced_tables)
        targets = placement.hosting_any(statement.write_tables, enabled)
        if not targets:
            raise NoHostingBackendError(
                f"no enabled backend hosts any of {sorted(statement.write_tables)}"
            )
        if statement.read_tables:
            stragglers = [
                target.name
                for target in targets
                if not all(
                    self._placement.backend_hosts(target.name, table)
                    for table in statement.read_tables
                )
            ]
            if stragglers:
                # INSERT INTO a SELECT FROM b where some host of `a` does
                # not host `b`: executing there would fail and look like
                # divergence; not executing there *is* divergence. The
                # placement must colocate the tables (or keep one full
                # replica hosting both) — surface that, don't guess.
                raise NoHostingBackendError(
                    f"backends {stragglers} host {sorted(statement.write_tables)} but not "
                    f"all of {sorted(statement.read_tables)}; colocate the tables or "
                    "use a full replica"
                )
        return targets

    def _execute_broadcast(
        self,
        enabled: List[Backend],
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        in_transaction: bool = False,
        session_id: Optional[str] = None,
        trace: Any = None,
    ) -> Tuple[List[str], List[Any], int]:
        # Anything reaching this path that is not a genuine read is
        # replicated; only genuine writes are logged for resync —
        # transaction control and in-transaction reads are not.
        log_it = not statement.is_read and not statement.is_transaction_control
        # Conflict-aware scope: a key-level lock for a provably
        # single-row DML, table locks covering everything the statement
        # touches (disjoint statements run in parallel), or the exclusive
        # global mode for transaction control / unknown table sets — see
        # _lock_scope_spec and ClassifiedStatement.lock_tables.
        while True:
            # The lock span opens *before* scope resolution: resolving a
            # key scope may probe the schema catalog (first statement per
            # table), and that probe is part of the cost of taking the
            # right lock — leaving it outside would show up as a mystery
            # gap between classify and lock in the trace.
            if trace is not None:
                trace.begin("lock")
            spec = self._lock_scope_spec(statement, params)
            with self._locks.scope(spec):
                if trace is not None:
                    trace.end("lock", kind=_scope_kind(spec))
                if isinstance(spec, LockScope) and (
                    self._lock_scope_spec(statement, params) != spec
                ):
                    # The PK was resolved *before* acquiring, and a racing
                    # DDL (which holds a conflicting table lock while it
                    # invalidates the PK cache) may have changed it in
                    # between. Recompute under the lock; a changed
                    # footprint means our key no longer stands for the
                    # row identity — release and re-acquire the right
                    # scope.
                    continue
                if self._batch_eligible(statement, in_transaction, log_it):
                    # Safe to decide here: while this scope is held no
                    # BEGIN/disable/resync/placement swap can run (all
                    # take the exclusive mode), so the eligibility and
                    # target snapshot cannot go stale before the round.
                    enabled = self.enabled_backends()
                    if not enabled:
                        raise SchedulerError("no enabled backend available")
                    targets = self._write_targets(enabled, statement)
                    result, outcome, durable_index = self._write_batcher.run(
                        sql, params, statement, spec, targets, trace=trace
                    )
                else:
                    result, outcome, durable_index = self._broadcast_under_scope(
                        sql, params, statement, spec, in_transaction, session_id, log_it,
                        trace=trace,
                    )
            break
        if result is None:
            raise SchedulerError(
                f"statement failed on every backend: {'; '.join(outcome.failure_messages())}"
            )
        if durable_index is not None and self._group_commit is not None:
            # Outside every lock: concurrent writers pile into one fsync
            # group here instead of serialising their fsyncs under
            # _state_lock, which is the whole point of group commit.
            if trace is None:
                self._group_commit.wait_durable(durable_index)
            else:
                with trace.span("fsync_wait", durable_index=durable_index):
                    self._group_commit.wait_durable(durable_index)
        return result

    def _broadcast_under_scope(
        self,
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        spec: Any,
        in_transaction: bool,
        session_id: Optional[str],
        log_it: bool,
        trace: Any = None,
    ) -> Tuple[Optional[Tuple[List[str], List[Any], int]], Any, Optional[int]]:
        """Execute one broadcast while the caller holds its lock scope.

        Returns ``(result, outcome, durable_index)`` — the last log index
        this statement appended (directly or via a COMMIT's buffer
        flush), which the caller hands to the group-commit coordinator
        once the scope is released; None when nothing was appended."""
        # Re-snapshot the membership under the lock: a backend enabled
        # by a resync that this write waited out must be included, or
        # it silently misses the write with no resync left to replay it.
        enabled = self.enabled_backends()
        if not enabled:
            raise SchedulerError("no enabled backend available")
        # Placement narrows the fan-out to the hosting backends (all
        # of them under full replication / transaction control /
        # unknown table sets).
        targets = self._write_targets(enabled, statement)
        if log_it and self._cache is not None:
            # Invalidate before execution as well: entries cached
            # against the pre-write state must not survive the write.
            # Safe under concurrent writers: this writer holds its
            # tables' locks, so only it can invalidate them here.
            self._cache.invalidate_tables(statement.write_tables)
        if trace is None:
            outcome = self._broadcaster.broadcast(targets, sql, params)
        else:
            # No backend-list attr: the per-replica child spans already
            # name every backend this execute fanned out to.
            with trace.span("execute"):
                outcome = self._broadcaster.broadcast(targets, sql, params, trace=trace)
        # A statement fault on *every* backend blames the statement —
        # the replicas agree and stay healthy. A fault on a strict
        # subset while others accepted the write is divergence: the
        # minority is missing a committed write and must leave the
        # read rotation until resynced. Replica faults (connection
        # died) always mark the backend failed.
        any_succeeded = bool(outcome.succeeded)
        for failure in outcome.failed:
            if any_succeeded or not isinstance(failure.error, STATEMENT_FAULTS):
                failure.backend.mark_failed()
        result = outcome.result
        if trace is not None:
            trace.begin("log_append", logged=log_it and any_succeeded)
        durable_index = self._account_broadcast_locked_scope(
            sql,
            params,
            statement,
            outcome,
            in_transaction,
            session_id,
            log_it,
            any_succeeded,
            result,
            held_keys=spec.keys if isinstance(spec, LockScope) else frozenset(),
        )
        if trace is not None:
            trace.end("log_append")
        if statement.command == "DROP" and any_succeeded:
            # Keep the map bounded under table churn; a recreated
            # table gets a fresh assignment.
            self._placement.unpin(statement.write_tables)
        if statement.command in _SCHEMA_COMMANDS:
            # The DDL may have changed (or removed) a table's primary
            # key; forget it while still holding the DDL's lock scope so
            # key writers re-resolve behind us, never alongside us.
            self._invalidate_pk_cache(statement.write_tables or None)
        elif log_it and statement.lock_tables is None:
            # An unknown-shape write ran under the exclusive mode and
            # could have changed any schema.
            self._invalidate_pk_cache(None)
        if log_it and self._cache is not None:
            # Invalidate again now that every backend applied the write:
            # evicts results a concurrent read cached from a backend the
            # broadcast had not reached yet, and bumps the floor so any
            # still-in-flight read cannot store a pre-write result.
            self._cache.invalidate_tables(statement.write_tables)
        return result, outcome, durable_index

    def _batch_eligible(
        self, statement: ClassifiedStatement, in_transaction: bool, log_it: bool
    ) -> bool:
        """Whether this statement may ride a WriteBatcher round.

        Only plain logged auto-commit DML qualifies: transaction control
        and in-transaction statements carry per-session state, DDL runs
        placement/PK-cache side effects the batch round does not
        replicate, and an unknown table set means an exclusive scope —
        which cannot coexist with the sibling scopes a batch implies.
        Checked *after* scope acquisition, so the ``_open_transactions``
        read is stable: BEGIN takes the exclusive mode, which drains
        every held scope first."""
        if self._write_batcher is None or in_transaction or not log_it:
            return False
        if statement.command not in _KEYABLE_COMMANDS:
            return False
        if not statement.write_tables or statement.lock_tables is None:
            return False
        if statement.referenced_tables:
            return False
        with self._state_lock:
            return self._open_transactions == 0

    def _execute_batch_round(
        self, items: List[_BatchItem], leader: Optional[_BatchItem] = None
    ) -> None:
        """Execute one coalesced batch of auto-commit writes: one
        broadcast round trip carrying every statement, one batch log
        append, per-statement accounting identical to the scalar path.

        Called by the WriteBatcher leader. Every item's writer still
        holds its own lock scope (pairwise disjoint), all items resolved
        the same target replica set, and eligibility excluded DDL /
        transaction control / tx-buffered writes — so none of the scalar
        path's DROP-unpin, PK-invalidate or tx-buffer branches apply.

        Trace attribution: the round's ``execute``/``log_append`` spans
        land on the *leader's* trace (the leading thread genuinely
        spends that time inside its own statement); every item gets
        ``batch_meta`` so riders can attribute their ``batch_wait``."""
        if not items:
            return
        leader_trace = leader.trace if leader is not None else None
        for item in items:
            item.batch_meta = (
                leader_trace.trace_id if leader_trace is not None else None,
                len(items),
            )
        targets = items[0].targets
        cache = self._cache
        if cache is not None:
            # Pre-invalidate, as in the scalar path: entries cached
            # against the pre-write state must not survive the write.
            for item in items:
                cache.invalidate_tables(item.statement.write_tables)
        if leader_trace is None:
            batch = self._broadcaster.broadcast_batch(
                targets, [(item.sql, item.params) for item in items]
            )
        else:
            with leader_trace.span("execute", batch_size=len(items)):
                batch = self._broadcaster.broadcast_batch(
                    targets,
                    [(item.sql, item.params) for item in items],
                    trace=leader_trace,
                )
        per_statement = [batch.per_statement(i) for i in range(len(items))]
        for outcome in per_statement:
            # Same divergence rule as the scalar path, per statement: a
            # statement fault everywhere blames the statement; a strict
            # subset (or any replica fault) fails the backend.
            any_succeeded = bool(outcome.succeeded)
            for failure in outcome.failed:
                if any_succeeded or not isinstance(failure.error, STATEMENT_FAULTS):
                    failure.backend.mark_failed()
        if leader_trace is not None:
            leader_trace.begin("log_append", batch_size=len(items))
        with self._state_lock:
            appended: List[Optional[LogEntry]] = [None] * len(items)
            to_append = [
                index
                for index, outcome in enumerate(per_statement)
                if outcome.succeeded
            ]
            if to_append:
                entries = self._recovery_log.append_batch(
                    (
                        items[index].sql,
                        items[index].params,
                        items[index].statement.write_tables,
                    )
                    for index in to_append
                )
                for index, entry in zip(to_append, entries):
                    appended[index] = entry
            last_index = self._recovery_log.last_index
            # Every advancement before any clamp: a backend that applied
            # statement 1 but failed statement 3 must *end* clamped below
            # entry 3 — the reverse order could leave its checkpoint past
            # an entry it missed.
            for index, outcome in enumerate(per_statement):
                entry = appended[index]
                for success in outcome.succeeded:
                    success.backend.advance_checkpoint(
                        last_index, entry.table_seqs if entry is not None else None
                    )
            for index, outcome in enumerate(per_statement):
                entry = appended[index]
                if entry is None:
                    continue
                for failure in outcome.failed:
                    failure.backend.limit_checkpoint(entry.index - 1)
        if leader_trace is not None:
            leader_trace.end("log_append")
        if cache is not None:
            for item in items:
                cache.invalidate_tables(item.statement.write_tables)
        for index, item in enumerate(items):
            item.outcome = per_statement[index]
            item.result = per_statement[index].result
            entry = appended[index]
            item.durable_index = entry.index if entry is not None else None

    def _account_broadcast_locked_scope(
        self,
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        outcome: Any,
        in_transaction: bool,
        session_id: Optional[str],
        log_it: bool,
        any_succeeded: bool,
        result: Optional[Tuple[List[str], List[Any], int]],
        held_keys: FrozenSet[Tuple[str, Any]] = frozenset(),
    ) -> Optional[int]:
        """Log append, transaction accounting and checkpoint advancement
        for one broadcast. Caller holds the statement's lock scope; this
        method serialises the shared accounting under ``_state_lock``
        (two disjoint-table writers run their broadcasts in parallel but
        append + advance atomically, one after the other).

        The transaction counter cannot change while any writer holds
        table locks — BEGIN/COMMIT/ROLLBACK take the exclusive mode,
        which waits for every table scope to drain — so the buffered-vs-
        direct append decision made here is stable for the lock holder.

        Returns the highest log index this statement appended (its own
        entry, or the tail of a COMMIT's buffer flush) for group-commit
        durability waits; None when nothing was appended.
        """
        with self._state_lock:
            appended: Optional[LogEntry] = None
            durable_index: Optional[int] = None
            if log_it and any_succeeded:
                # Logged only after at least one replica accepted it: a
                # statement every backend rejected must not sit in the log
                # and poison future resyncs.
                if self._open_transactions > 0:
                    # Deferred until COMMIT (discarded on ROLLBACK) so the
                    # log only ever holds committed writes. The engine has
                    # one transaction cluster-wide on the shared backend
                    # connections, so while *any* transaction is open even
                    # an autocommit write executes — and rolls back —
                    # inside it; defer those too. Keyed on the scheduler's
                    # own accounting, not the caller's in_transaction flag:
                    # the flag can go stale (e.g. another session closed
                    # the transaction), and a write the engine autocommits
                    # must be logged immediately, never left in the buffer.
                    self._tx_buffer.append(
                        (sql, dict(params or {}), frozenset(statement.write_tables), held_keys)
                    )
                    if statement.write_tables:
                        self._tx_dirty_tables.update(statement.write_tables)
                    else:
                        self._tx_dirty_all = True
                else:
                    appended = self._recovery_log.append(
                        sql, params, write_tables=statement.write_tables
                    )
                    durable_index = appended.index
            if statement.is_transaction_control:
                if statement.command in ("BEGIN", "START"):
                    # Count every BEGIN the engine accepted — the engine
                    # rejects nested BEGINs, so acceptance *is* the ground
                    # truth that a transaction opened (the caller's
                    # in_transaction flag can be stale). One rejected by
                    # every backend opened nothing and counting it would
                    # pin the dirty set.
                    if result is not None:
                        self._open_transactions += 1
                        if self._tx_owner is None:
                            self._tx_owner = session_id
                elif statement.command in ("COMMIT", "ROLLBACK") and (
                    in_transaction or self._open_transactions > 0
                ):
                    # Keyed on the scheduler's own accounting as well as the
                    # caller's flag: on the shared backend connections a
                    # COMMIT closes the open transaction no matter which
                    # session sends it, and a caller that doesn't thread
                    # in_transaction must not pin the counter forever.
                    #
                    # A close rejected as bad SQL anywhere (e.g. an
                    # unsupported COMMIT variant) changed nothing on that
                    # still-ENABLED replica: the transaction remains open
                    # there, so keep the buffer and the accounting.
                    statement_rejected = result is None and any(
                        isinstance(failure.error, STATEMENT_FAULTS)
                        for failure in outcome.failed
                    )
                    if not statement_rejected:
                        flushed: List[LogEntry] = []
                        if statement.command == "COMMIT" and result is not None:
                            # One batch append for the whole transaction:
                            # a durable store pays one flush+fsync for all
                            # of it instead of one per buffered write.
                            flushed = self._recovery_log.append_batch(
                                (buffered_sql, buffered_params, buffered_tables)
                                for buffered_sql, buffered_params, buffered_tables, _ in self._tx_buffer
                            )
                        if flushed:
                            durable_index = flushed[-1].index
                        # ROLLBACK — or a close no backend could run (those
                        # replicas are FAILED and their aborted server
                        # sessions rolled the transaction back) — discards
                        # the buffer; either way the accounting must not
                        # stay pinned.
                        self._tx_buffer = []
                        self._open_transactions = max(0, self._open_transactions - 1)
                        if self._open_transactions == 0:
                            self._tx_owner = None
                        self._flush_tx_dirty_locked()
                        # The still-enabled replicas ran the whole
                        # transaction; record the flushed entries' table
                        # sequences as applied there so a later replay
                        # can deduplicate them. Per entry, not merged:
                        # applied-sequence tracking is exact membership
                        # (a per-table max would shadow entries a replica
                        # missed — see Backend.has_applied_seqs).
                        for entry in flushed:
                            for success in outcome.succeeded:
                                success.backend.advance_checkpoint(
                                    entry.index, entry.table_seqs
                                )
            last_index = self._recovery_log.last_index
            for success in outcome.succeeded:
                # advance_checkpoint refuses on non-ENABLED backends: a
                # concurrent disjoint writer may have marked this backend
                # FAILED for a write it missed, and advancing past that
                # write would make the next resync silently skip it.
                success.backend.advance_checkpoint(
                    last_index, appended.table_seqs if appended is not None else None
                )
            if appended is not None:
                for failure in outcome.failed:
                    # Even if a concurrent disjoint write already advanced
                    # this backend's checkpoint past our entry, the entry
                    # it just missed must stay inside its replay range.
                    failure.backend.limit_checkpoint(appended.index - 1)
            return durable_index

    def _flush_tx_dirty_locked(self) -> None:
        """Evict cache entries that may have observed uncommitted state.

        Runs on every COMMIT/ROLLBACK (the scheduler does not track which
        session's transaction just ended, so it over-invalidates rather
        than serve data from a rolled-back transaction forever). The dirty
        set survives until no transaction remains open, so an unrelated
        session's commit cannot erase the tracking of one still in flight.
        Caller holds ``_state_lock`` (and the exclusive lock scope —
        transaction control never runs under mere table locks).
        """
        if self._cache is not None:
            if self._tx_dirty_all:
                self._cache.invalidate_tables(())
            elif self._tx_dirty_tables:
                self._cache.invalidate_tables(self._tx_dirty_tables)
        if self._open_transactions == 0:
            self._tx_dirty_all = False
            self._tx_dirty_tables = set()

    # -- lifecycle / observability ------------------------------------------------

    def close(self) -> None:
        self._broadcaster.close()

    def stats(self) -> Dict[str, Any]:
        cache = self._cache
        with self._pk_lock:
            pk_cached = len(self._pk_cache)
        broadcast_stats = self._broadcaster.stats()
        return {
            "read_policy": self._policy.name,
            "placement": self._placement.stats(),
            "locks": self._locks.stats(),
            "key_level_locking": self._key_level_locking,
            "primary_keys_cached": pk_cached,
            "open_transactions": self.open_transactions,
            "parallel_writes": self._broadcaster.parallel,
            "broadcaster": broadcast_stats,
            # Alias: operators look for the pool size under "broadcast".
            "broadcast": broadcast_stats,
            "group_commit": self._group_commit.stats() if self._group_commit else None,
            "write_batching": self._write_batcher.stats() if self._write_batcher else None,
            "query_cache": cache.stats() if cache is not None else None,
            "recovery_log_entries": self._recovery_log.last_index,
            "recovery_log": self._recovery_log.stats(),
            "cold_starts": self.cold_starts,
            "resync_in_progress": self.resync_in_progress,
            "backends": [
                {
                    "name": backend.name,
                    "state": backend.state.value,
                    "statements_executed": backend.statements_executed,
                    "pending": backend.pending,
                    "checkpoint_index": backend.checkpoint_index,
                    "weight": backend.weight,
                    "last_heartbeat_at": backend.last_heartbeat_at,
                }
                for backend in self.backends()
            ],
        }
