"""Request scheduling: the controller's routing hot path.

The scheduler is a thin orchestrator over four pluggable layers:

1. :mod:`repro.cluster.classifier` — token-level statement classification
   (read/write/transaction-control) and read/written table extraction,
2. :mod:`repro.cluster.loadbalancer` — the read policy choosing one
   enabled backend per read (round-robin, least-pending, weighted),
3. :mod:`repro.cluster.broadcaster` — thread-pooled parallel execution of
   writes on every enabled backend with per-backend failure aggregation,
4. :mod:`repro.cluster.querycache` — an optional SELECT-result cache
   invalidated by the tables each write touches.

Replication semantics are unchanged from the original single-class
scheduler: reads go to one enabled backend, writes (and any statement
inside an explicit transaction) go to all of them, genuine writes are
appended to the recovery log for backend resync, and a write that fails
on one backend marks that backend FAILED while the statement still
succeeds if any replica accepted it. Writes are serialised so the
recovery-log order equals the execution order on every backend; the
parallelism is *across backends within one write*.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend, STATEMENT_FAULTS
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.classifier import (
    ClassifiedStatement,
    classify,
    is_transaction_control,
    is_write_statement,
)
from repro.cluster.loadbalancer import ReadPolicy, RoundRobinPolicy
from repro.cluster.querycache import QueryCache
from repro.cluster.recovery import DatabaseDumper, LogCompactedError, RecoveryLog
from repro.errors import DriverError

__all__ = [
    "RequestScheduler",
    "SchedulerError",
    "is_write_statement",
    "is_transaction_control",
]


class SchedulerError(DriverError):
    """No backend available to execute the request."""


class RequestScheduler:
    """Routes statements to backends (RAIDb-1: full replication)."""

    def __init__(
        self,
        backends: List[Backend],
        recovery_log: RecoveryLog,
        read_policy: Optional[ReadPolicy] = None,
        query_cache: Optional[QueryCache] = None,
        broadcaster: Optional[WriteBroadcaster] = None,
    ) -> None:
        self._backends = list(backends)
        self._recovery_log = recovery_log
        self._policy = read_policy or RoundRobinPolicy()
        self._cache = query_cache
        self._broadcaster = broadcaster or WriteBroadcaster(parallel=True)
        self._lock = threading.Lock()
        # Writes are totally ordered: log append + broadcast happen under
        # this lock so every backend applies writes in log order.
        self._write_lock = threading.Lock()
        # Tables written inside open transactions (guarded by _write_lock).
        # A concurrent autocommit read can cache the uncommitted state, and
        # a later ROLLBACK would leave that entry stale forever — so every
        # COMMIT/ROLLBACK flushes these from the cache. The set is only
        # cleared once *no* transaction remains open: the scheduler cannot
        # tell whose transaction just ended, so it over-invalidates rather
        # than let one session's COMMIT erase another session's tracking.
        self._tx_dirty_tables: set = set()
        self._tx_dirty_all = False
        self._open_transactions = 0
        # Writes executed inside the open transaction, deferred from the
        # recovery log until COMMIT: a rolled-back write must never be
        # replayed into a recovering backend, and a backend that failed
        # mid-transaction must replay the whole transaction at resync.
        # A single buffer is sound because the engine admits one open
        # transaction at a time (a second BEGIN is rejected); if backends
        # ever gain per-session connections this needs keying by session.
        self._tx_buffer: List[Tuple[str, Dict[str, Any]]] = []
        # True while a resync replay or dump restore holds the write lock:
        # the controller answers write traffic with ``controller_recovering``
        # so failover-capable drivers retry on a sibling instead of
        # queueing behind the replay.
        self._resyncing = False
        self.cold_starts = 0

    # -- configuration -----------------------------------------------------------

    @property
    def open_transactions(self) -> int:
        """Transactions currently open somewhere on the cluster."""
        with self._write_lock:
            return self._open_transactions

    @property
    def resync_in_progress(self) -> bool:
        """Whether a resync/cold-start currently holds the write path."""
        return self._resyncing

    @staticmethod
    def _backend_checkpoint_name(backend: Backend) -> str:
        return f"backend:{backend.name}"

    def checkpoint_and_disable(self, backend: Backend) -> int:
        """Disable a backend around a consistent checkpoint, atomically
        with respect to the write path: no broadcast is in flight while
        the checkpoint is recorded, so it reflects exactly the writes the
        backend has applied. The checkpoint is registered by name so log
        compaction keeps the entries this backend still needs to replay."""
        with self._write_lock:
            if backend.enabled:
                checkpoint = self._recovery_log.last_index
            else:
                # Already DISABLED/FAILED: the backend stopped applying
                # writes at its *existing* checkpoint. Re-recording the
                # current head would skip every write it missed since —
                # the next resync would silently leave it diverged.
                checkpoint = backend.checkpoint_index
            backend.disable(checkpoint)
            self._recovery_log.checkpoint(
                self._backend_checkpoint_name(backend), checkpoint, overwrite=True
            )
            return checkpoint

    def resync_and_enable(self, backend: Backend, dumper: Optional[DatabaseDumper] = None) -> int:
        """Replay a disabled backend's missed writes and re-enable it,
        atomically with respect to the write path.

        Holding the write lock for the whole snapshot+replay+enable means
        no write can land between the log snapshot and the ENABLED flip
        (it would be applied to the other replicas only and never
        replayed), and no transaction can open mid-resync — a backend
        joining mid-transaction would apply the transaction's remaining
        writes as autocommit, beyond ROLLBACK's reach.

        When compaction already truncated entries this backend needs, a
        ``dumper`` turns the replay into a dump-based cold start from a
        healthy sibling; without one the caller gets a SchedulerError.
        Returns how many log entries were replayed.
        """
        with self._write_lock:
            if self._open_transactions:
                raise SchedulerError(
                    f"cannot enable backend {backend.name!r} while a transaction "
                    "is open; retry after it ends"
                )
            self._resyncing = True
            try:
                try:
                    entries = self._recovery_log.entries_after(backend.checkpoint_index)
                except LogCompactedError as exc:
                    if dumper is None:
                        raise SchedulerError(
                            f"cannot resync backend {backend.name!r}: {exc}"
                        ) from exc
                    replayed = self._cold_start_locked(backend, dumper)
                else:
                    replayed = backend.resync(entries)
            finally:
                self._resyncing = False
            self._recovery_log.release_checkpoint(self._backend_checkpoint_name(backend))
            if self._cache is not None:
                # The re-enabled backend immediately serves reads, and its
                # rows were written by replay/restore — never observed by
                # the cache's invalidation clock. Flush so no entry cached
                # while it was out of rotation survives as stale.
                self._cache.clear()
            return replayed

    def bootstrap_backend(self, backend: Backend, dumper: Optional[DatabaseDumper] = None) -> int:
        """Add a brand-new backend to the running cluster by cold-starting
        it from a dump of a healthy sibling (no full-history replay).

        Atomic with the write path: the dump, the restore and the ENABLED
        flip happen under the write lock, so the new replica joins exactly
        at the log head. Returns the number of restore statements run."""
        dumper = dumper or DatabaseDumper()
        with self._write_lock:
            if self._open_transactions:
                raise SchedulerError(
                    f"cannot bootstrap backend {backend.name!r} while a transaction "
                    "is open; retry after it ends"
                )
            self._resyncing = True
            try:
                statements = self._cold_start_locked(backend, dumper, count_statements=True)
            finally:
                self._resyncing = False
            with self._lock:
                if backend not in self._backends:
                    self._backends.append(backend)
            if self._cache is not None:
                self._cache.clear()
            return statements

    def _cold_start_locked(
        self, backend: Backend, dumper: DatabaseDumper, count_statements: bool = False
    ) -> int:
        """Dump a healthy sibling into ``backend`` and enable it.

        Caller holds the write lock, so the dump is consistent and the
        tail replay after it is empty by construction — the machinery
        still runs so offline dumps (taken earlier, with writes landing
        since) follow the exact same path."""
        source = next(
            (candidate for candidate in self.enabled_backends() if candidate is not backend),
            None,
        )
        if source is None:
            raise SchedulerError(
                f"no healthy backend available to dump for cold-starting {backend.name!r}"
            )
        dump = dumper.dump(
            source.execute,
            checkpoint_index=self._recovery_log.last_index,
            source=source.name,
        )
        statements = backend.initialize_from_dump(dump, dumper)
        replayed = backend.resync(self._recovery_log.entries_after(backend.checkpoint_index))
        self.cold_starts += 1
        return statements if count_statements else replayed

    def create_dump(
        self,
        checkpoint_name: Optional[str] = None,
        dumper: Optional[DatabaseDumper] = None,
    ):
        """Snapshot one healthy backend under the write lock and pin the
        snapshot's log position under a named checkpoint, so compaction
        cannot truncate the tail a consumer will replay after restoring
        the dump. Release the checkpoint once every consumer cold-started."""
        dumper = dumper or DatabaseDumper()
        with self._write_lock:
            source = next(iter(self.enabled_backends()), None)
            if source is None:
                raise SchedulerError("no enabled backend available to dump")
            index = self._recovery_log.last_index
            name = checkpoint_name or f"dump-{index}"
            self._recovery_log.checkpoint(name, index, overwrite=True)
            return dumper.dump(
                source.execute, checkpoint_index=index, checkpoint_name=name, source=source.name
            )

    @property
    def read_policy(self) -> ReadPolicy:
        return self._policy

    @property
    def query_cache(self) -> Optional[QueryCache]:
        return self._cache

    @property
    def broadcaster(self) -> WriteBroadcaster:
        return self._broadcaster

    # -- backend set -------------------------------------------------------------

    def backends(self) -> List[Backend]:
        with self._lock:
            return list(self._backends)

    def enabled_backends(self) -> List[Backend]:
        return [backend for backend in self.backends() if backend.enabled]

    def add_backend(self, backend: Backend) -> None:
        with self._lock:
            self._backends.append(backend)

    # -- routing -----------------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Dict[str, Any]] = None, in_transaction: bool = False
    ) -> Tuple[List[str], List[Any], int]:
        """Execute one statement with replication semantics."""
        enabled = self.enabled_backends()
        if not enabled:
            raise SchedulerError("no enabled backend available")
        statement = classify(sql)
        if statement.is_read and not in_transaction:
            return self._execute_read(enabled, sql, params, statement)
        return self._execute_broadcast(enabled, sql, params, statement, in_transaction)

    def _execute_read(
        self,
        enabled: List[Backend],
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
    ) -> Tuple[List[str], List[Any], int]:
        cache = self._cache
        use_cache = cache is not None and statement.cacheable
        if use_cache:
            cached = cache.get(sql, params)
            if cached is not None:
                return cached
            stamp = cache.stamp()
            # Re-snapshot *after* taking the stamp: a backend that failed
            # (and so missed) a concurrent write is excluded here, and one
            # that fails later implies the write's post-broadcast
            # invalidation postdates our stamp — either way pre-write data
            # cannot be cached as fresh.
            enabled = self.enabled_backends()
            if not enabled:
                raise SchedulerError("no enabled backend available")
        backend = self._policy.choose(enabled)
        backend.begin_request()
        try:
            result = backend.execute(sql, params)
        finally:
            backend.finish_request()
        if use_cache:
            cache.put(sql, params, statement.read_tables, result, stamp=stamp)
        return result

    def _execute_broadcast(
        self,
        enabled: List[Backend],
        sql: str,
        params: Optional[Dict[str, Any]],
        statement: ClassifiedStatement,
        in_transaction: bool = False,
    ) -> Tuple[List[str], List[Any], int]:
        # Anything reaching this path that is not a genuine read is
        # replicated; only genuine writes are logged for resync —
        # transaction control and in-transaction reads are not.
        log_it = not statement.is_read and not statement.is_transaction_control
        with self._write_lock:
            # Re-snapshot the membership under the lock: a backend enabled
            # by a resync that this write waited out must be included, or
            # it silently misses the write with no resync left to replay it.
            enabled = self.enabled_backends()
            if not enabled:
                raise SchedulerError("no enabled backend available")
            if log_it and self._cache is not None:
                # Invalidate before execution as well: entries cached
                # against the pre-write state must not survive the write.
                self._cache.invalidate_tables(statement.write_tables)
            outcome = self._broadcaster.broadcast(enabled, sql, params)
            # A statement fault on *every* backend blames the statement —
            # the replicas agree and stay healthy. A fault on a strict
            # subset while others accepted the write is divergence: the
            # minority is missing a committed write and must leave the
            # read rotation until resynced. Replica faults (connection
            # died) always mark the backend failed.
            any_succeeded = bool(outcome.succeeded)
            for failure in outcome.failed:
                if any_succeeded or not isinstance(failure.error, STATEMENT_FAULTS):
                    failure.backend.mark_failed()
            result = outcome.result
            if log_it and any_succeeded:
                # Logged only after at least one replica accepted it: a
                # statement every backend rejected must not sit in the log
                # and poison future resyncs. The write lock keeps log
                # order equal to execution order regardless.
                if self._open_transactions > 0:
                    # Deferred until COMMIT (discarded on ROLLBACK) so the
                    # log only ever holds committed writes. The engine has
                    # one transaction cluster-wide on the shared backend
                    # connections, so while *any* transaction is open even
                    # an autocommit write executes — and rolls back —
                    # inside it; defer those too. Keyed on the scheduler's
                    # own accounting, not the caller's in_transaction flag:
                    # the flag can go stale (e.g. another session closed
                    # the transaction), and a write the engine autocommits
                    # must be logged immediately, never left in the buffer.
                    self._tx_buffer.append((sql, dict(params or {})))
                    if statement.write_tables:
                        self._tx_dirty_tables.update(statement.write_tables)
                    else:
                        self._tx_dirty_all = True
                else:
                    self._recovery_log.append(sql, params)
            if statement.is_transaction_control:
                if statement.command in ("BEGIN", "START"):
                    # Count every BEGIN the engine accepted — the engine
                    # rejects nested BEGINs, so acceptance *is* the ground
                    # truth that a transaction opened (the caller's
                    # in_transaction flag can be stale). One rejected by
                    # every backend opened nothing and counting it would
                    # pin the dirty set.
                    if result is not None:
                        self._open_transactions += 1
                elif statement.command in ("COMMIT", "ROLLBACK") and (
                    in_transaction or self._open_transactions > 0
                ):
                    # Keyed on the scheduler's own accounting as well as the
                    # caller's flag: on the shared backend connections a
                    # COMMIT closes the open transaction no matter which
                    # session sends it, and a caller that doesn't thread
                    # in_transaction must not pin the counter forever.
                    #
                    # A close rejected as bad SQL anywhere (e.g. an
                    # unsupported COMMIT variant) changed nothing on that
                    # still-ENABLED replica: the transaction remains open
                    # there, so keep the buffer and the accounting.
                    statement_rejected = result is None and any(
                        isinstance(failure.error, STATEMENT_FAULTS)
                        for failure in outcome.failed
                    )
                    if not statement_rejected:
                        if statement.command == "COMMIT" and result is not None:
                            for buffered_sql, buffered_params in self._tx_buffer:
                                self._recovery_log.append(buffered_sql, buffered_params)
                        # ROLLBACK — or a close no backend could run (those
                        # replicas are FAILED and their aborted server
                        # sessions rolled the transaction back) — discards
                        # the buffer; either way the accounting must not
                        # stay pinned.
                        self._tx_buffer = []
                        self._open_transactions = max(0, self._open_transactions - 1)
                        self._flush_tx_dirty_locked()
            last_index = self._recovery_log.last_index
            for success in outcome.succeeded:
                success.backend.checkpoint_index = last_index
            if log_it and self._cache is not None:
                # Invalidate again now that every backend applied the write:
                # evicts results a concurrent read cached from a backend the
                # broadcast had not reached yet, and bumps the floor so any
                # still-in-flight read cannot store a pre-write result.
                self._cache.invalidate_tables(statement.write_tables)
        if result is None:
            raise SchedulerError(
                f"statement failed on every backend: {'; '.join(outcome.failure_messages())}"
            )
        return result

    def _flush_tx_dirty_locked(self) -> None:
        """Evict cache entries that may have observed uncommitted state.

        Runs on every COMMIT/ROLLBACK (the scheduler does not track which
        session's transaction just ended, so it over-invalidates rather
        than serve data from a rolled-back transaction forever). The dirty
        set survives until no transaction remains open, so an unrelated
        session's commit cannot erase the tracking of one still in flight.
        Caller holds ``_write_lock``.
        """
        if self._cache is not None:
            if self._tx_dirty_all:
                self._cache.invalidate_tables(())
            elif self._tx_dirty_tables:
                self._cache.invalidate_tables(self._tx_dirty_tables)
        if self._open_transactions == 0:
            self._tx_dirty_all = False
            self._tx_dirty_tables = set()

    # -- lifecycle / observability ------------------------------------------------

    def close(self) -> None:
        self._broadcaster.close()

    def stats(self) -> Dict[str, Any]:
        cache = self._cache
        return {
            "read_policy": self._policy.name,
            "parallel_writes": self._broadcaster.parallel,
            "query_cache": cache.stats() if cache is not None else None,
            "recovery_log_entries": self._recovery_log.last_index,
            "recovery_log": self._recovery_log.stats(),
            "cold_starts": self.cold_starts,
            "resync_in_progress": self.resync_in_progress,
            "backends": [
                {
                    "name": backend.name,
                    "state": backend.state.value,
                    "statements_executed": backend.statements_executed,
                    "pending": backend.pending,
                    "checkpoint_index": backend.checkpoint_index,
                    "weight": backend.weight,
                    "last_heartbeat_at": backend.last_heartbeat_at,
                }
                for backend in self.backends()
            ],
        }
