"""Request scheduling: write broadcast and read load balancing."""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend
from repro.cluster.recovery_log import RecoveryLog
from repro.errors import DriverError

#: Statements treated as reads; everything else is broadcast as a write.
_READ_PREFIXES = ("SELECT",)
#: Transaction-control statements are broadcast but not logged for resync
#: (replaying a bare COMMIT against a recovered backend is meaningless).
_TRANSACTION_PREFIXES = ("BEGIN", "COMMIT", "ROLLBACK", "START")


def is_write_statement(sql: str) -> bool:
    """Whether ``sql`` modifies state and must be broadcast to all replicas."""
    head = sql.lstrip().split(None, 1)
    if not head:
        return False
    keyword = head[0].upper()
    return not keyword.startswith(_READ_PREFIXES)


def is_transaction_control(sql: str) -> bool:
    head = sql.lstrip().split(None, 1)
    if not head:
        return False
    return head[0].upper() in _TRANSACTION_PREFIXES


class SchedulerError(DriverError):
    """No backend available to execute the request."""


class RequestScheduler:
    """Routes statements to backends (RAIDb-1: full replication).

    Reads go to one enabled backend, chosen round-robin. Writes go to every
    enabled backend and are appended to the recovery log so that disabled
    backends can catch up later. Statements executed inside an explicit
    transaction are pinned to *all* backends (the simple, correct choice
    for full replication).
    """

    def __init__(self, backends: List[Backend], recovery_log: RecoveryLog) -> None:
        self._backends = list(backends)
        self._recovery_log = recovery_log
        self._round_robin = 0
        self._lock = threading.Lock()

    # -- backend set -------------------------------------------------------------

    def backends(self) -> List[Backend]:
        with self._lock:
            return list(self._backends)

    def enabled_backends(self) -> List[Backend]:
        return [backend for backend in self.backends() if backend.enabled]

    def add_backend(self, backend: Backend) -> None:
        with self._lock:
            self._backends.append(backend)

    # -- routing -----------------------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Dict[str, Any]] = None, in_transaction: bool = False
    ) -> Tuple[List[str], List[Any], int]:
        """Execute one statement with replication semantics."""
        enabled = self.enabled_backends()
        if not enabled:
            raise SchedulerError("no enabled backend available")
        write = is_write_statement(sql)
        if not write and not in_transaction:
            backend = self._pick_read_backend(enabled)
            return backend.execute(sql, params)
        # Writes (and anything inside a transaction) go everywhere.
        if write and not is_transaction_control(sql):
            self._recovery_log.append(sql, params)
        result: Optional[Tuple[List[str], List[Any], int]] = None
        failures: List[str] = []
        for backend in enabled:
            try:
                outcome = backend.execute(sql, params)
            except DriverError as exc:
                backend.mark_failed()
                failures.append(f"{backend.name}: {exc}")
                continue
            if result is None:
                result = outcome
            backend.checkpoint_index = self._recovery_log.last_index
        if result is None:
            raise SchedulerError(
                f"statement failed on every backend: {'; '.join(failures)}"
            )
        return result

    def _pick_read_backend(self, enabled: List[Backend]) -> Backend:
        with self._lock:
            self._round_robin = (self._round_robin + 1) % len(enabled)
            return enabled[self._round_robin]
