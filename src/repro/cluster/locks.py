"""Conflict-aware locking for the scheduler's write path.

The original write path serialised every broadcast behind one global
``threading.Lock``, so a hash-partitioned RAIDb-0/2 cluster gained write
capacity on paper but executed one write at a time in practice. This
module provides the :class:`LockManager` that replaces it: writes
acquire **table-level locks** derived from the classifier's table sets,
so statements touching disjoint tables execute and broadcast in
parallel while conflicting statements still serialise in acquisition
order.

Two acquisition modes:

- :meth:`LockManager.tables` — lock a known, non-empty table set. The
  acquisition is *all-or-nothing under one condition variable*, so there
  is no incremental lock ordering and therefore no deadlock between
  writers (a writer never holds some of its tables while waiting for
  others).
- :meth:`LockManager.exclusive` — the global mode. It waits for every
  in-flight table acquisition to drain and blocks all new ones, which is
  exactly the old global-lock behaviour. Everything that relied on total
  order keeps it by acquiring this mode: transaction control, statements
  with an unknown/unparseable table set, resync replays, dump-based cold
  starts, snapshot dumps and placement swaps. The worst case is today's
  safety — never weaker.

Exclusive acquisition has priority over new table acquisitions: once an
exclusive caller is waiting, fresh table acquisitions queue behind it,
so a resync cannot be starved by a steady stream of writers. Exclusive
acquisition is reentrant per thread (a recovery path that re-enters the
scheduler must not self-deadlock); table acquisition is not, and never
needs to be — one statement acquires exactly once.

``conflict_aware=False`` turns every acquisition into the exclusive
mode, restoring the single-global-lock behaviour byte for byte — the
concurrency benchmark (E15) compares the two modes, and operators can
fall back via ``ControllerConfig.conflict_aware_locking``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Set


class LockManager:
    """Table-level write locks with an exclusive global mode."""

    def __init__(self, conflict_aware: bool = True) -> None:
        #: When False, every acquisition takes the exclusive mode — the
        #: pre-lock-manager behaviour (one global write lock).
        self.conflict_aware = conflict_aware
        self._cond = threading.Condition()
        #: Tables currently locked by some in-flight statement.
        self._held_tables: Set[str] = set()
        #: How many table-scope acquisitions are in flight.
        self._active_table_ops = 0
        #: Thread ident of the exclusive holder (None when free).
        self._exclusive_owner: Optional[int] = None
        self._exclusive_depth = 0
        #: Exclusive callers currently waiting (gives them priority).
        self._exclusive_waiters = 0
        # -- counters (surfaced through stats()) --
        self.table_acquisitions = 0
        self.exclusive_acquisitions = 0
        #: Acquisitions that had to wait for a conflicting holder.
        self.table_waits = 0
        self.exclusive_waits = 0
        #: Total seconds spent blocked waiting for locks.
        self.wait_seconds = 0.0

    # -- table scope -------------------------------------------------------------

    def acquire_tables(self, tables: Iterable[str]) -> FrozenSet[str]:
        """Block until every table in ``tables`` is free, then hold them.

        Returns the frozen set actually held (pass it to
        :meth:`release_tables`). Must not be called with an empty set —
        an unknown table set means the caller cannot know what it
        conflicts with and must take :meth:`exclusive` instead.
        """
        wanted = frozenset(tables)
        if not wanted:
            raise ValueError("empty table set: acquire exclusive() instead")
        with self._cond:
            waited = False
            started = 0.0
            while (
                self._exclusive_owner is not None
                or self._exclusive_waiters
                or not self._held_tables.isdisjoint(wanted)
            ):
                if not waited:
                    waited = True
                    started = time.monotonic()
                self._cond.wait()
            if waited:
                self.table_waits += 1
                self.wait_seconds += time.monotonic() - started
            self._held_tables.update(wanted)
            self._active_table_ops += 1
            self.table_acquisitions += 1
            return wanted

    def release_tables(self, tables: FrozenSet[str]) -> None:
        with self._cond:
            self._held_tables.difference_update(tables)
            self._active_table_ops -= 1
            self._cond.notify_all()

    # -- exclusive scope ---------------------------------------------------------

    def acquire_exclusive(self) -> None:
        """Block until no table acquisition is in flight, then hold the
        whole write path. Reentrant per thread."""
        me = threading.get_ident()
        with self._cond:
            if self._exclusive_owner == me:
                self._exclusive_depth += 1
                return
            self._exclusive_waiters += 1
            waited = False
            started = 0.0
            try:
                while self._exclusive_owner is not None or self._active_table_ops:
                    if not waited:
                        waited = True
                        started = time.monotonic()
                    self._cond.wait()
            finally:
                self._exclusive_waiters -= 1
            if waited:
                self.exclusive_waits += 1
                self.wait_seconds += time.monotonic() - started
            self._exclusive_owner = me
            self._exclusive_depth = 1
            self.exclusive_acquisitions += 1

    def release_exclusive(self) -> None:
        with self._cond:
            if self._exclusive_owner != threading.get_ident():
                raise RuntimeError("exclusive lock released by a non-owner thread")
            self._exclusive_depth -= 1
            if self._exclusive_depth == 0:
                self._exclusive_owner = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    @contextmanager
    def tables(self, tables: Iterable[str]) -> Iterator[None]:
        held = self.acquire_tables(tables)
        try:
            yield
        finally:
            self.release_tables(held)

    @contextmanager
    def scope(self, tables: Optional[Iterable[str]]) -> Iterator[None]:
        """The scheduler's one entry point: table locks for a known
        non-empty table set, the exclusive mode for ``None``/empty (and
        always when ``conflict_aware`` is off)."""
        table_set = frozenset(tables) if tables is not None else frozenset()
        if not self.conflict_aware or not table_set:
            with self.exclusive():
                yield
        else:
            with self.tables(table_set):
                yield

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "conflict_aware": self.conflict_aware,
                "tables_held": len(self._held_tables),
                "active_table_ops": self._active_table_ops,
                "exclusive_held": self._exclusive_owner is not None,
                "exclusive_waiters": self._exclusive_waiters,
                "table_acquisitions": self.table_acquisitions,
                "exclusive_acquisitions": self.exclusive_acquisitions,
                "table_waits": self.table_waits,
                "exclusive_waits": self.exclusive_waits,
                "wait_seconds": round(self.wait_seconds, 6),
            }
