"""Conflict-aware locking for the scheduler's write path.

The original write path serialised every broadcast behind one global
``threading.Lock``, so a hash-partitioned RAIDb-0/2 cluster gained write
capacity on paper but executed one write at a time in practice. This
module provides the :class:`LockManager` that replaces it. Lock
granularity is a three-step ladder — each step covers strictly less than
the one above it, and every acquisition falls back *up* the ladder
whenever the narrower scope cannot be proven safe:

1. :meth:`LockManager.exclusive` — the global mode. It waits for every
   in-flight scope to drain and blocks all new ones, which is exactly
   the old global-lock behaviour. Everything that relies on total order
   keeps it: transaction control, statements with an unknown/unparseable
   table set, resync replays, dump-based cold starts, snapshot dumps and
   placement swaps. The worst case is today's safety — never weaker.
2. **table locks** — a write acquires locks on a known, non-empty table
   set, so statements touching disjoint tables execute and broadcast in
   parallel while conflicting statements serialise in acquisition order.
3. **key locks** — a single-row write whose primary-key value is fully
   resolved (the scheduler consults the schema catalog) locks just
   ``(table, key)``, so writers on *disjoint rows of the same table*
   overlap too. A key lock conflicts with a table lock on its table in
   **both directions**: a table-scope holder blocks every key on that
   table, and any held key blocks a whole-table acquisition.

Every acquisition is *all-or-nothing under one condition variable*, so
there is no incremental lock ordering and therefore no deadlock between
writers (a writer never holds part of its scope while waiting for the
rest). Scopes are described by :class:`LockScope` — a set of whole
tables plus a set of ``(table, key)`` pairs — and acquired through
:meth:`LockManager.scope`.

Exclusive acquisition has priority over new table/key acquisitions: once
an exclusive caller is waiting, fresh scopes queue behind it, so a
resync cannot be starved by a steady stream of writers. Exclusive
acquisition is reentrant per thread, and a thread already holding the
exclusive mode acquires any narrower scope as a **no-op**: exclusive
self-ownership already covers every table and key, and waiting for
itself to release would deadlock (a recovery path re-entering the
scheduler did exactly that before this rule existed).

``conflict_aware=False`` turns every acquisition into the exclusive
mode, restoring the single-global-lock behaviour byte for byte — the
concurrency benchmark (E15) compares the modes, and operators can fall
back via ``ControllerConfig.conflict_aware_locking``. Key granularity
has its own switch one layer up (``ControllerConfig.key_level_locking``):
the scheduler simply stops producing key scopes, and every write is a
table scope again.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple, Union


@dataclass(frozen=True)
class LockScope:
    """One acquisition's footprint: whole tables plus ``(table, key)``
    pairs. Empty scopes are the sentinel for "already covered" (an
    exclusive self-owner's narrower acquisition) and release as no-ops."""

    tables: FrozenSet[str] = frozenset()
    keys: FrozenSet[Tuple[str, Any]] = frozenset()

    @property
    def empty(self) -> bool:
        return not self.tables and not self.keys

    def describe(self) -> str:
        parts = [f"table:{name}" for name in sorted(self.tables)]
        parts += [f"key:{table}[{key!r}]" for table, key in sorted(self.keys, key=repr)]
        return ", ".join(parts) or "nothing"


#: The no-op scope handed back when the caller already holds exclusive.
_COVERED = LockScope()

#: What ``scope()`` accepts: None/empty → exclusive, an iterable of table
#: names → table locks, a LockScope → exactly that footprint.
ScopeSpec = Union[None, Iterable[str], LockScope]


class LockManager:
    """Table- and key-level write locks with an exclusive global mode."""

    def __init__(self, conflict_aware: bool = True) -> None:
        #: When False, every acquisition takes the exclusive mode — the
        #: pre-lock-manager behaviour (one global write lock).
        self.conflict_aware = conflict_aware
        self._cond = threading.Condition()
        #: Tables currently locked whole by some in-flight statement.
        self._held_tables: Set[str] = set()
        #: Keys currently locked, per table (table → set of key values).
        self._held_keys: Dict[str, Set[Any]] = {}
        #: How many table/key-scope acquisitions are in flight.
        self._active_scope_ops = 0
        #: Thread ident of the exclusive holder (None when free).
        self._exclusive_owner: Optional[int] = None
        self._exclusive_depth = 0
        #: Exclusive callers currently waiting (gives them priority).
        self._exclusive_waiters = 0
        #: Scope callers currently blocked (observable: lets tests and
        #: operators see queued writers live, not only after the fact).
        self._scope_waiters = 0
        # -- counters (surfaced through stats()) --
        self.table_acquisitions = 0
        self.key_acquisitions = 0
        self.exclusive_acquisitions = 0
        #: Acquisitions that had to wait for a conflicting holder.
        self.table_waits = 0
        self.key_waits = 0
        self.exclusive_waits = 0
        #: Narrower scopes absorbed by exclusive self-ownership (the
        #: would-be self-deadlocks).
        self.covered_by_exclusive = 0
        #: Total seconds spent blocked waiting for locks.
        self.wait_seconds = 0.0

    # -- conflict predicate ------------------------------------------------------

    def _scope_conflicts_locked(self, scope: LockScope) -> bool:
        """Whether ``scope`` conflicts with the current holders. Caller
        holds ``_cond``. Exclusive state is checked by the wait loops."""
        for table in scope.tables:
            # A whole-table request conflicts with the table held whole
            # AND with any key held on it — table↔key conflicts must cut
            # both ways or a table-scope DDL could run under a row write.
            if table in self._held_tables or self._held_keys.get(table):
                return True
        for table, key in scope.keys:
            if table in self._held_tables:
                return True
            if key in self._held_keys.get(table, ()):
                return True
        return False

    # -- table / key scopes ------------------------------------------------------

    def acquire_scope(self, scope: LockScope) -> LockScope:
        """Block until every table and key in ``scope`` is free, then
        hold them all (all-or-nothing). Returns the scope actually held —
        pass it to :meth:`release_scope`.

        A thread that already owns the exclusive mode gets the empty
        scope back immediately: its exclusive hold covers any table or
        key, and waiting for ``_exclusive_owner`` to clear would be
        waiting for itself (the self-deadlock this excusal fixes).

        Must not be called with an empty scope — an unknown footprint
        means the caller cannot know what it conflicts with and must
        take :meth:`exclusive` instead."""
        if scope.empty:
            raise ValueError("empty lock scope: acquire exclusive() instead")
        me = threading.get_ident()
        with self._cond:
            if self._exclusive_owner == me:
                self.covered_by_exclusive += 1
                return _COVERED
            waited = False
            started = 0.0
            try:
                while (
                    self._exclusive_owner is not None
                    or self._exclusive_waiters
                    or self._scope_conflicts_locked(scope)
                ):
                    if not waited:
                        waited = True
                        started = time.monotonic()
                        self._scope_waiters += 1
                    self._cond.wait()
            finally:
                if waited:
                    self._scope_waiters -= 1
            if waited:
                self.wait_seconds += time.monotonic() - started
                if scope.tables:
                    self.table_waits += 1
                else:
                    self.key_waits += 1
            self._held_tables.update(scope.tables)
            for table, key in scope.keys:
                self._held_keys.setdefault(table, set()).add(key)
            self._active_scope_ops += 1
            if scope.tables:
                self.table_acquisitions += 1
            if scope.keys:
                self.key_acquisitions += 1
            return scope

    def release_scope(self, scope: LockScope) -> None:
        if scope.empty:
            # The exclusive self-ownership sentinel: nothing was taken.
            return
        with self._cond:
            self._held_tables.difference_update(scope.tables)
            for table, key in scope.keys:
                keys = self._held_keys.get(table)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        self._held_keys.pop(table, None)
            self._active_scope_ops -= 1
            self._cond.notify_all()

    def acquire_tables(self, tables: Iterable[str]) -> FrozenSet[str]:
        """Table-only convenience over :meth:`acquire_scope`; returns the
        frozen table set actually held (empty when exclusive
        self-ownership already covered it)."""
        wanted = frozenset(tables)
        if not wanted:
            raise ValueError("empty table set: acquire exclusive() instead")
        return self.acquire_scope(LockScope(tables=wanted)).tables

    def release_tables(self, tables: FrozenSet[str]) -> None:
        release = frozenset(tables)
        if not release:
            return
        self.release_scope(LockScope(tables=release))

    # -- exclusive scope ---------------------------------------------------------

    def acquire_exclusive(self) -> None:
        """Block until no table/key acquisition is in flight, then hold
        the whole write path. Reentrant per thread."""
        me = threading.get_ident()
        with self._cond:
            if self._exclusive_owner == me:
                self._exclusive_depth += 1
                return
            self._exclusive_waiters += 1
            waited = False
            started = 0.0
            try:
                while self._exclusive_owner is not None or self._active_scope_ops:
                    if not waited:
                        waited = True
                        started = time.monotonic()
                    self._cond.wait()
            finally:
                self._exclusive_waiters -= 1
            if waited:
                self.exclusive_waits += 1
                self.wait_seconds += time.monotonic() - started
            self._exclusive_owner = me
            self._exclusive_depth = 1
            self.exclusive_acquisitions += 1

    def release_exclusive(self) -> None:
        with self._cond:
            if self._exclusive_owner != threading.get_ident():
                raise RuntimeError("exclusive lock released by a non-owner thread")
            self._exclusive_depth -= 1
            if self._exclusive_depth == 0:
                self._exclusive_owner = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    @contextmanager
    def tables(self, tables: Iterable[str]) -> Iterator[None]:
        held = self.acquire_tables(tables)
        try:
            yield
        finally:
            self.release_tables(held)

    @contextmanager
    def scope(self, spec: ScopeSpec) -> Iterator[None]:
        """The scheduler's one entry point: a :class:`LockScope` (or a
        plain table set) for a known non-empty footprint, the exclusive
        mode for ``None``/empty (and always when ``conflict_aware`` is
        off)."""
        if isinstance(spec, LockScope):
            scope = spec
        else:
            scope = LockScope(tables=frozenset(spec) if spec is not None else frozenset())
        if not self.conflict_aware or scope.empty:
            with self.exclusive():
                yield
        else:
            held = self.acquire_scope(scope)
            try:
                yield
            finally:
                self.release_scope(held)

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "conflict_aware": self.conflict_aware,
                "tables_held": len(self._held_tables),
                "keys_held": sum(len(keys) for keys in self._held_keys.values()),
                "key_tables_held": len(self._held_keys),
                "active_table_ops": self._active_scope_ops,
                "exclusive_held": self._exclusive_owner is not None,
                "exclusive_waiters": self._exclusive_waiters,
                "scope_waiters": self._scope_waiters,
                "table_acquisitions": self.table_acquisitions,
                "key_acquisitions": self.key_acquisitions,
                "exclusive_acquisitions": self.exclusive_acquisitions,
                "table_waits": self.table_waits,
                "key_waits": self.key_waits,
                "exclusive_waits": self.exclusive_waits,
                "covered_by_exclusive": self.covered_by_exclusive,
                "wait_seconds": round(self.wait_seconds, 6),
            }
