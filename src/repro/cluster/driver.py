"""Cluster client driver (the analogue of the Sequoia JDBC driver).

"Sequoia offers a JDBC driver with failover capabilities that needs to be
installed in client applications" (paper Section 5.3). This runtime is the
Python equivalent:

- connection URLs may list several controllers
  (``sequoia://controller1,controller2/vdb``); the driver load-balances
  new connections across them and fails over to the next controller when
  one becomes unavailable,
- the wire protocol is versioned; drivers are backward compatible with
  older controllers (the handshake downgrades),
- statements that fail because the current controller died are retried
  once on another controller, as long as no transaction is in flight.

Like the pydb runtime, Drivolution driver *packages* for Sequoia bind a
name/version to this runtime (see
:func:`repro.dbapi.driver_factory.build_sequoia_driver`).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.cluster.wire import (
    CLUSTER_PROTOCOL_VERSION,
    ERROR_NOT_PRIMARY,
    ERROR_SERVER_BUSY,
    MULTIPLEX_MIN_VERSION,
    TRACE_MIN_VERSION,
    ClusterMessageType,
    make_connect,
    make_execute,
    make_session_close,
    make_session_open,
)
from repro.dbapi.api import Connection, Cursor
from repro.dbapi.exceptions import InterfaceError, OperationalError, ProgrammingError
from repro.dbapi.urls import ConnectionUrl, parse_url
from repro.errors import TransportError
from repro.netsim.registry import DEFAULT_NETWORK_NAME, get_network
from repro.netsim.transport import Channel, Network

_FALSEY_OPTION_VALUES = {False, 0, "0", "false", "False", "off", "no"}


def _option_enabled(value: Any, default: bool = True) -> bool:
    if value is None:
        return default
    return value not in _FALSEY_OPTION_VALUES


class _ServerBusy(Exception):
    """Internal marker for a ``server_busy`` admission-control rejection.

    Deliberately *not* an OperationalError: the generic failover path
    must never see it — a saturated controller is healthy, and failing
    over to a sibling would just move the herd. The retry loop in
    :meth:`ClusterConnection._execute` converts it to backoff-and-retry
    on the same host, or to a plain OperationalError once the retry
    budget is spent."""


class _MuxPending:
    """One in-flight request on a multiplexed channel."""

    __slots__ = ("event", "reply")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[Dict[str, Any]] = None


class MultiplexedChannel:
    """One physical channel carrying many logical sessions (wire v3).

    A background reader thread is the only receiver: it matches each
    reply to its waiter by ``(session_id, request_id)``, so any number
    of connections (and any number of pipelined statements per
    connection) can have requests in flight concurrently. Sending is
    serialised by a lock; waiting costs no thread — the caller blocks on
    its own :class:`threading.Event`.

    Lifecycle: the driver runtime pools these per
    ``(network, host, database, user)``; the physical channel closes
    when its last logical session does (no idle pooling, so no leaked
    reader threads once clients are gone).
    """

    def __init__(
        self,
        channel: Channel,
        host: str,
        controller_id: str,
        key: Tuple[Any, ...],
        tracing: bool = False,
    ) -> None:
        self._channel = channel
        self.host = host
        self.controller_id = controller_id
        #: Registry key, used by the runtime to evict/release the link.
        self.key = key
        #: Whether the controller granted tracing on this channel
        #: (``tracing=True`` in the CONNECT_OK) — sessions that want
        #: spans back may then send a ``trace_id`` per EXECUTE.
        self.tracing = tracing
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: Dict[Tuple[str, int], _MuxPending] = {}
        self._request_ids = itertools.count(1)
        self._sessions: set = set()
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"mux-reader-{host}", daemon=True
        )
        self._reader.start()

    # -- reader ------------------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                message = self._channel.recv(timeout=None)
            except TransportError:
                self._fail_all("controller channel lost")
                return
            if message.get("type") == ClusterMessageType.PONG:
                continue
            session_id = message.get("session_id")
            request_id = message.get("request_id")
            if not isinstance(session_id, str) or not isinstance(request_id, int):
                # Uncorrelated frame (e.g. a ``bad_correlation`` error for
                # garbage this driver never sends): no owner to wake.
                continue
            with self._lock:
                pending = self._pending.pop((session_id, request_id), None)
            if pending is not None:
                pending.reply = message
                pending.event.set()

    def _fail_all(self, reason: str) -> None:
        with self._lock:
            self._dead = True
            pendings = list(self._pending.values())
            self._pending.clear()
        for pending in pendings:
            pending.reply = {
                "type": ClusterMessageType.ERROR,
                "code": "connection_lost",
                "message": reason,
            }
            pending.event.set()

    # -- requests ----------------------------------------------------------------

    def _send_correlated(self, key: Tuple[str, int], message: Dict[str, Any]) -> _MuxPending:
        pending = _MuxPending()
        with self._lock:
            if self._dead:
                raise TransportError("multiplexed channel is closed")
            self._pending[key] = pending
        try:
            with self._send_lock:
                self._channel.send(message)
        except TransportError:
            with self._lock:
                self._pending.pop(key, None)
            self._fail_all("controller channel lost")
            raise
        return pending

    def submit(
        self,
        session_id: str,
        sql: str,
        params: Optional[Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> _MuxPending:
        """Fire one statement without waiting — the pipelining primitive."""
        request_id = next(self._request_ids)
        return self._send_correlated(
            (session_id, request_id),
            make_execute(
                sql, params, session_id=session_id, request_id=request_id, trace_id=trace_id
            ),
        )

    @staticmethod
    def wait(pending: _MuxPending, timeout: float = 30.0) -> Dict[str, Any]:
        if not pending.event.wait(timeout):
            raise TransportError("timed out waiting for multiplexed reply")
        reply = pending.reply or {}
        if reply.get("type") == ClusterMessageType.ERROR and reply.get("code") == "connection_lost":
            raise TransportError(str(reply.get("message")))
        return reply

    def request(
        self,
        session_id: str,
        sql: str,
        params: Optional[Dict[str, Any]],
        timeout: float = 30.0,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.wait(self.submit(session_id, sql, params, trace_id=trace_id), timeout=timeout)

    # -- logical sessions ----------------------------------------------------------

    def open_session(self) -> str:
        session_id = uuid.uuid4().hex
        request_id = next(self._request_ids)
        pending = self._send_correlated(
            (session_id, request_id), make_session_open(session_id, request_id)
        )
        reply = self.wait(pending, timeout=10.0)
        if reply.get("type") != ClusterMessageType.SESSION_OPEN_OK:
            raise TransportError(
                f"session open failed: [{reply.get('code')}] {reply.get('message')}"
            )
        with self._lock:
            self._sessions.add(session_id)
        return session_id

    def close_session(self, session_id: str) -> int:
        """Close one logical session; returns how many remain."""
        with self._lock:
            self._sessions.discard(session_id)
            dead = self._dead
            remaining = len(self._sessions)
        if not dead:
            try:
                with self._send_lock:
                    self._channel.send(make_session_close(session_id))
            except TransportError:
                self._fail_all("controller channel lost")
        return remaining

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead

    def close(self) -> None:
        self._fail_all("channel closed")
        try:
            with self._send_lock:
                self._channel.send({"type": ClusterMessageType.CLOSE})
        except TransportError:
            pass
        self._channel.close()


class ClusterCursor(Cursor):
    """Cursor over the controller EXECUTE/RESULT exchange."""

    def __init__(self, connection: "ClusterConnection") -> None:
        self._connection = connection
        self._rows: List[Tuple[Any, ...]] = []
        self._index = 0
        self._columns: List[str] = []
        self._rowcount = -1
        self._closed = False

    @property
    def description(self) -> Optional[List[Tuple]]:
        if not self._columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._columns]

    @property
    def rowcount(self) -> int:
        return self._rowcount

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> "ClusterCursor":
        if self._closed:
            raise InterfaceError("cursor is closed")
        result = self._connection._execute(sql, params or {})
        self._columns = list(result.get("columns", []))
        self._rows = [tuple(row) for row in result.get("rows", [])]
        self._index = 0
        self._rowcount = int(result.get("rowcount", -1))
        return self

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        if self._index >= len(self._rows):
            return None
        row = self._rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        count = size if size is not None else self.arraysize
        rows = self._rows[self._index : self._index + count]
        self._index += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows = self._rows[self._index :]
        self._index = len(self._rows)
        return rows

    def close(self) -> None:
        self._closed = True
        self._rows = []


class ClusterConnection(Connection):
    """A failover-capable connection to a controller group."""

    def __init__(
        self,
        driver: "ClusterDriverRuntime",
        network: Network,
        url: ConnectionUrl,
        user: Optional[str],
        password: Optional[str],
        options: Dict[str, Any],
    ) -> None:
        self._driver = driver
        self._network = network
        self._url = url
        self._user = user
        self._password = password
        self._options = options
        self._channel: Optional[Channel] = None
        self._mux_link: Optional[MultiplexedChannel] = None
        self._session_id: Optional[str] = None
        self._controller_id: Optional[str] = None
        self._closed = False
        self._in_transaction = False
        self._lock = threading.Lock()
        self.statements_executed = 0
        self.failovers = 0
        #: Controller HA: the primary address the last ``not_primary``
        #: bounce carried (tried first on the next reconnect), and
        #: whether the last OperationalError was such a bounce — bounces
        #: get their own bounded retry grace so chasing the primary does
        #: not eat the dead-host failover budget.
        self._primary_hint: Optional[str] = None
        self._not_primary_bounce = False
        self.not_primary_bounces = 0
        #: server_busy admission rejections retried (and total time slept
        #: backing off) — the saturation-visibility twin of ``failovers``.
        self.server_busy_retries = 0
        self.busy_backoff_seconds = 0.0
        self._busy_retries = max(0, int(options.get("busy_retries", 8)))
        self._busy_backoff_s = max(0.0, float(options.get("busy_backoff_ms", 2.0))) / 1000.0
        self._busy_backoff_cap_s = (
            max(0.0, float(options.get("busy_backoff_cap_ms", 50.0))) / 1000.0
        )
        # Multiplexing is attempted by default on a v3 driver; the
        # handshake downgrades transparently against a v2 controller (or
        # one configured with multiplexing off) — absence of the
        # ``multiplexing`` grant in CONNECT_OK means a dedicated channel.
        self._want_mux = driver.protocol_version >= MULTIPLEX_MIN_VERSION and _option_enabled(
            options.get("multiplexing"), default=True
        )
        self._mux_channels_per_host = max(1, int(options.get("mux_channels_per_host", 1)))
        # Tracing is opt-in (``trace=true`` in the URL options or connect
        # kwargs) and negotiated like multiplexing: without the
        # controller's ``tracing`` grant every frame stays untraced.
        self._want_trace = driver.protocol_version >= TRACE_MIN_VERSION and _option_enabled(
            options.get("trace"), default=False
        )
        self._tracing = False
        #: Most recent traced statement: ``{"trace_id", "latency_s",
        #: "spans"}`` with the server's span payload in wire form (see
        #: ``repro.obs.Trace.spans_from_wire`` to rehydrate).
        self.last_trace: Optional[Dict[str, Any]] = None
        self.traced_statements = 0
        # Per-statement trace ids are a connection-unique prefix plus a
        # counter: as unique as a fresh uuid4 per statement, without
        # paying uuid generation on every traced execute.
        self._trace_id_prefix = uuid.uuid4().hex[:16]
        self._trace_seq = 0
        self._connect_to_any()

    # -- connection establishment with failover -----------------------------------

    def _detach(self) -> None:
        """Drop the current attachment (dedicated channel or logical
        session), closing server-side state so nothing leaks. A failover
        away from a *healthy* controller (e.g. one answering
        controller_recovering) would otherwise pin its session for the
        process lifetime."""
        if self._channel is not None:
            channel, self._channel = self._channel, None
            try:
                channel.send({"type": ClusterMessageType.CLOSE})
            except TransportError:
                pass
            try:
                channel.close()
            except Exception:
                pass
        if self._mux_link is not None:
            link, self._mux_link = self._mux_link, None
            session_id, self._session_id = self._session_id, None
            if session_id is not None:
                try:
                    link.close_session(session_id)
                except Exception:
                    pass
            self._driver._release_mux_link(link)

    def _attach_mux(self, link: MultiplexedChannel, session_id: str, host: str) -> None:
        self._mux_link = link
        self._session_id = session_id
        self._controller_id = link.controller_id
        self._current_host = host
        self._tracing = self._want_trace and link.tracing

    def _connect_to_any(self, exclude: Optional[str] = None) -> None:
        self._detach()
        hosts = list(self._url.hosts)
        start = self._driver._next_start_index(len(hosts))
        ordered = hosts[start:] + hosts[:start]
        if exclude is not None:
            ordered = [host for host in ordered if host != exclude] or ordered
        hint = self._primary_hint
        if hint is not None and hint in ordered:
            # An HA follower told us where the primary is: try it first
            # instead of probing hosts in round-robin order.
            ordered = [hint] + [host for host in ordered if host != hint]
        last_error: Optional[Exception] = None
        for host in ordered:
            key = (id(self._network), host, self._url.database, self._user)
            forming = False
            if self._want_mux:
                # Piggyback on an already-established multiplexed channel
                # to this controller before opening a new socket. A None
                # checkout claims a forming slot against the per-host cap
                # (released in the finally below, whatever the outcome).
                link = self._driver._checkout_mux_link(key, self._mux_channels_per_host)
                if link is not None:
                    try:
                        session_id = link.open_session()
                    except TransportError as exc:
                        last_error = exc
                        self._driver._evict_mux_link(link)
                        # fall through: fresh connect to the same host
                    else:
                        self._attach_mux(link, session_id, host)
                        return
                else:
                    forming = True
            try:
                try:
                    channel = self._network.connect(host, timeout=5.0)
                    channel.send(
                        make_connect(
                            virtual_database=self._url.database,
                            user=self._user,
                            password=self._password,
                            protocol_version=self._driver.protocol_version,
                            options={
                                name: str(value) for name, value in self._options.items()
                            },
                            multiplex=self._want_mux,
                            trace=self._want_trace,
                        )
                    )
                    reply = channel.recv(timeout=10.0)
                except TransportError as exc:
                    last_error = exc
                    continue
                if reply.get("type") == ClusterMessageType.ERROR:
                    last_error = OperationalError(
                        f"[{reply.get('code')}] {reply.get('message')}"
                    )
                    channel.close()
                    continue
                if reply.get("type") != ClusterMessageType.CONNECT_OK:
                    last_error = InterfaceError(
                        f"unexpected handshake reply {reply.get('type')!r}"
                    )
                    channel.close()
                    continue
                if self._want_mux and reply.get("multiplexing"):
                    link = MultiplexedChannel(
                        channel,
                        host,
                        str(reply.get("controller_id", host)),
                        key,
                        tracing=bool(reply.get("tracing")),
                    )
                    try:
                        session_id = link.open_session()
                    except TransportError as exc:
                        last_error = exc
                        link.close()
                        continue
                    self._driver._register_mux_link(link)
                    self._attach_mux(link, session_id, host)
                    return
                # Dedicated mode: the controller did not grant multiplexing
                # (older protocol, or configured off) — the handshaked
                # channel serves this connection alone, exactly the v2
                # behaviour.
                self._channel = channel
                self._controller_id = str(reply.get("controller_id", host))
                self._current_host = host
                self._tracing = self._want_trace and bool(reply.get("tracing"))
                return
            finally:
                if forming:
                    self._driver._mux_forming_done(key)
        raise OperationalError(f"no controller reachable among {hosts!r}: {last_error}")

    # -- statement execution ---------------------------------------------------------

    def _execute(self, sql: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise InterfaceError("connection is closed")
        with self._lock:
            # One attempt per configured controller: a dead controller and
            # a sibling busy replaying its recovery log (error code
            # ``controller_recovering``) both push the statement to the
            # next host. ``failovers`` counts *successful* reconnects —
            # a reconnect that fails raises without bumping the counter.
            attempts = max(2, len(self._url.hosts))
            busy_left = self._busy_retries
            # HA ``not_primary`` bounces are healthy redirections, not
            # failures: they get their own bounded grace so a redirect
            # (or a just-finished election) never exhausts the budget
            # meant for actually-dead controllers.
            bounce_grace = len(self._url.hosts)
            attempt = 0
            while attempt < attempts:
                try:
                    return self._execute_once(sql, params)
                except _ServerBusy as exc:
                    # Admission-control rejection: the controller refused
                    # the statement *before* any backend saw it, so
                    # retrying the same host is safe even mid-transaction
                    # (the session — and the transaction it owns — is
                    # alive and well; the controller is merely saturated).
                    # Failing over would only move the herd, so the retry
                    # stays put, with capped jittered exponential backoff.
                    if busy_left <= 0:
                        raise OperationalError(str(exc)) from exc
                    used = self._busy_retries - busy_left
                    busy_left -= 1
                    delay = min(
                        self._busy_backoff_cap_s, self._busy_backoff_s * (2**used)
                    ) * (0.5 + random.random() * 0.5)
                    self.server_busy_retries += 1
                    self.busy_backoff_seconds += delay
                    if delay > 0:
                        time.sleep(delay)
                except OperationalError:
                    # Transparent failover: only safe outside a transaction
                    # — mid-transaction the controller's session (and the
                    # transaction it owns) is gone, so surface the error
                    # rather than silently retrying against a sibling that
                    # never saw the transaction's earlier statements.
                    if self._in_transaction:
                        self._closed = True
                        raise
                    bounced, self._not_primary_bounce = self._not_primary_bounce, False
                    if bounced and bounce_grace > 0:
                        bounce_grace -= 1
                    else:
                        attempt += 1
                        if attempt >= attempts:
                            raise
                    self._connect_to_any(exclude=getattr(self, "_current_host", None))
                    self.failovers += 1
            raise OperationalError("unreachable")  # pragma: no cover

    def _execute_once(self, sql: str, params: Dict[str, Any]) -> Dict[str, Any]:
        # On a tracing-granted channel every statement carries a fresh
        # trace_id; the reply's span list (plus the round-trip latency
        # observed right here) lands in ``last_trace``. Untraced
        # connections skip all of it — no id, no timing, v2-identical
        # frames.
        if self._tracing:
            self._trace_seq += 1
            trace_id = f"{self._trace_id_prefix}-{self._trace_seq:x}"
            started = time.monotonic()
        else:
            trace_id = None
            started = 0.0
        if self._mux_link is not None:
            assert self._session_id is not None
            try:
                reply = self._mux_link.request(
                    self._session_id, sql, params, timeout=30.0, trace_id=trace_id
                )
            except TransportError as exc:
                self._driver._evict_mux_link(self._mux_link)
                raise OperationalError(f"controller connection lost: {exc}") from exc
        else:
            assert self._channel is not None
            try:
                self._channel.send(make_execute(sql, params, trace_id=trace_id))
                reply = self._channel.recv(timeout=30.0)
            except TransportError as exc:
                raise OperationalError(f"controller connection lost: {exc}") from exc
        if trace_id is not None:
            # Captured before interpretation so failed statements are
            # traceable too.
            self.traced_statements += 1
            # The span payload stays in wire form (a pre-serialised JSON
            # string) — parsing it belongs to whoever inspects the trace,
            # not to the statement latency path.
            self.last_trace = {
                "trace_id": trace_id,
                "latency_s": time.monotonic() - started,
                "spans": reply.get("trace") or [],
            }
        return self._interpret_reply(reply)

    def _interpret_reply(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        if reply.get("type") == ClusterMessageType.ERROR:
            code = reply.get("code")
            message = f"[{code}] {reply.get('message')}"
            if code == ERROR_SERVER_BUSY:
                raise _ServerBusy(message)
            if code == ERROR_NOT_PRIMARY:
                # HA follower bounce: remember where the primary is (the
                # reply may carry its address) and fail over — the
                # statement never ran, so the retry is safe. A bounce
                # without an address (mid-election, no winner yet) keeps
                # any previously learned hint rather than discarding it.
                hint = reply.get("primary_host")
                if hint:
                    self._primary_hint = str(hint)
                self._not_primary_bounce = True
                self.not_primary_bounces += 1
                raise OperationalError(message)
            if code in ("execution_failed",):
                raise ProgrammingError(message)
            raise OperationalError(message)
        if reply.get("type") != ClusterMessageType.RESULT:
            raise InterfaceError(f"unexpected reply {reply.get('type')!r}")
        self.statements_executed += 1
        return reply

    # -- statement pipelining ---------------------------------------------------------

    def execute_pipeline(
        self,
        statements: Iterable[Union[str, Tuple[str, Optional[Dict[str, Any]]]]],
        timeout: float = 30.0,
    ) -> List[Dict[str, Any]]:
        """Fire several statements back-to-back over the multiplexed
        channel without waiting for each reply (one round-trip's worth of
        latency overlaps the next statement's execution), then collect
        every result in order.

        On a dedicated (non-multiplexed) connection the statements simply
        run sequentially — same results, no overlap. Pipelining inside an
        open transaction is supported over wire v3: a session's queued
        statements execute strictly FIFO on the controller, so the fired
        batch lands in order within the transaction, and the final COMMIT
        (issued separately) flushes it. Transaction *control* cannot be
        pipelined: a BEGIN/COMMIT in the middle of an
        already-fired batch could not abort the statements behind it.
        There is no transparent failover for a pipeline — by the time an
        error surfaces, later statements may already have executed, so
        the failure is raised as-is (results before the failing statement
        are lost to the caller but were applied by the cluster)."""
        prepared: List[Tuple[str, Dict[str, Any]]] = []
        for statement in statements:
            if isinstance(statement, str):
                sql, params = statement, {}
            else:
                sql, params = statement[0], dict(statement[1] or {})
            head = sql.split(None, 1)[0].upper() if sql.strip() else ""
            if head in ("BEGIN", "COMMIT", "ROLLBACK", "START", "END"):
                raise ProgrammingError(f"cannot pipeline transaction control ({head})")
            prepared.append((sql, params))
        if self._closed:
            raise InterfaceError("connection is closed")
        if not prepared:
            return []
        if self._mux_link is None:
            return [self._execute(sql, params) for sql, params in prepared]
        with self._lock:
            link, session_id = self._mux_link, self._session_id
            assert link is not None and session_id is not None
            try:
                pendings = [link.submit(session_id, sql, params) for sql, params in prepared]
                replies = [link.wait(pending, timeout=timeout) for pending in pendings]
            except TransportError as exc:
                self._driver._evict_mux_link(link)
                raise OperationalError(f"controller connection lost: {exc}") from exc
            results = []
            for reply in replies:
                try:
                    results.append(self._interpret_reply(reply))
                except _ServerBusy as exc:
                    # Not auto-retried here: the statements behind the
                    # rejected one were already fired, and re-firing this
                    # one now would reorder it after them. The statement
                    # never executed, so the *caller* may re-issue it.
                    raise OperationalError(
                        f"{exc} (not auto-retried mid-pipeline: later statements "
                        "were already fired; the rejected statement never ran and "
                        "may be re-issued)"
                    ) from exc
            return results

    # -- DB-API -------------------------------------------------------------------------

    def cursor(self) -> ClusterCursor:
        if self._closed:
            raise InterfaceError("connection is closed")
        return ClusterCursor(self)

    def begin(self) -> None:
        self._execute("BEGIN", {})
        self._in_transaction = True

    def commit(self) -> None:
        if not self._in_transaction:
            return
        self._execute("COMMIT", {})
        self._in_transaction = False

    def rollback(self) -> None:
        if not self._in_transaction:
            return
        self._execute("ROLLBACK", {})
        self._in_transaction = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._detach()
        self._driver._forget_connection(self)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    @property
    def multiplexed(self) -> bool:
        """Whether this connection rides a shared multiplexed channel."""
        return self._mux_link is not None

    @property
    def session_id(self) -> Optional[str]:
        """Logical session id on a multiplexed channel (None when dedicated)."""
        return self._session_id

    @property
    def controller_id(self) -> Optional[str]:
        """Which controller this connection is currently attached to."""
        return self._controller_id

    @property
    def tracing(self) -> bool:
        """Whether statements on this connection carry trace ids."""
        return self._tracing

    def stats(self) -> Dict[str, Any]:
        """Per-connection counters (observability for tests/benches)."""
        return {
            "statements_executed": self.statements_executed,
            "failovers": self.failovers,
            "not_primary_bounces": self.not_primary_bounces,
            "server_busy_retries": self.server_busy_retries,
            "busy_backoff_seconds": self.busy_backoff_seconds,
            "tracing": self._tracing,
            "traced_statements": self.traced_statements,
        }

    @property
    def driver_info(self) -> Dict[str, Any]:
        return self._driver.info()


class ClusterDriverRuntime:
    """Parameterised Sequoia-like driver runtime."""

    api_name = "SEQUOIA"

    def __init__(
        self,
        name: str = "sequoia-driver",
        driver_version: Tuple[int, int, int] = (1, 0, 0),
        protocol_version: int = CLUSTER_PROTOCOL_VERSION,
        preconfigured_url: Optional[str] = None,
        default_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.driver_version = tuple(driver_version)
        self.protocol_version = protocol_version
        self.preconfigured_url = preconfigured_url
        self.default_options = dict(default_options or {})
        self._connections: List[ClusterConnection] = []
        self._round_robin = 0
        self._lock = threading.Lock()
        #: Shared multiplexed channels, keyed
        #: ``(id(network), host, database, user)`` — sessions for the same
        #: virtual database and credentials share a physical channel.
        self._mux_links: Dict[Tuple[Any, ...], List[MultiplexedChannel]] = {}
        #: Channel establishments in flight per key, counted against the
        #: per-host cap so a burst of concurrent connects does not
        #: stampede past ``mux_channels_per_host`` fresh channels.
        self._mux_forming: Dict[Tuple[Any, ...], int] = {}
        self._mux_cond = threading.Condition(self._lock)

    # -- multiplexed channel registry ------------------------------------------------

    def _checkout_mux_link(
        self, key: Tuple[Any, ...], channels_per_host: int
    ) -> Optional[MultiplexedChannel]:
        """An existing live channel for ``key``, or None to make the
        caller establish a new one — the caller then owns a *forming*
        slot and MUST report back via :meth:`_mux_forming_done`. Until
        ``channels_per_host`` channels exist (counting in-flight
        establishments), new sessions spread onto fresh channels; after
        that they pile onto the least-loaded live one. A caller that
        finds the cap reached but nothing live yet waits for a forming
        channel instead of opening channel number cap+1."""
        cap = max(1, channels_per_host)
        with self._mux_cond:
            while True:
                links = self._mux_links.get(key, [])
                live = [link for link in links if not link.dead]
                if len(live) != len(links):
                    if live:
                        self._mux_links[key] = live
                    else:
                        self._mux_links.pop(key, None)
                forming = self._mux_forming.get(key, 0)
                if len(live) + forming < cap:
                    self._mux_forming[key] = forming + 1
                    return None
                if live:
                    return min(live, key=lambda link: link.session_count)
                # Cap's worth of channels are mid-handshake on other
                # threads: piggyback on the first to finish. The timeout
                # claims a slot anyway if they all stall or fail.
                if not self._mux_cond.wait(timeout=10.0):
                    self._mux_forming[key] = self._mux_forming.get(key, 0) + 1
                    return None

    def _mux_forming_done(self, key: Tuple[Any, ...]) -> None:
        """Release a forming slot claimed by a None checkout — called
        whether the establishment registered a channel, downgraded to a
        dedicated one, or failed."""
        with self._mux_cond:
            remaining = self._mux_forming.get(key, 0) - 1
            if remaining > 0:
                self._mux_forming[key] = remaining
            else:
                self._mux_forming.pop(key, None)
            self._mux_cond.notify_all()

    def _register_mux_link(self, link: MultiplexedChannel) -> None:
        with self._mux_cond:
            self._mux_links.setdefault(link.key, []).append(link)
            self._mux_cond.notify_all()

    def _release_mux_link(self, link: MultiplexedChannel) -> None:
        """Called when a connection detaches: the physical channel closes
        once its last logical session is gone, so idle channels never
        outlive their clients (no leaked reader threads)."""
        close_it = False
        with self._lock:
            if link.session_count == 0 or link.dead:
                links = self._mux_links.get(link.key)
                if links and link in links:
                    links.remove(link)
                    if not links:
                        del self._mux_links[link.key]
                close_it = True
        if close_it:
            link.close()

    def _evict_mux_link(self, link: MultiplexedChannel) -> None:
        """Drop a dead channel from the registry so no new session tries
        to ride it; pending requests were already failed by its reader."""
        with self._lock:
            links = self._mux_links.get(link.key)
            if links and link in links:
                links.remove(link)
                if not links:
                    del self._mux_links[link.key]
        link.close()

    def mux_channel_count(self) -> int:
        """Live shared channels (observability for tests and benches)."""
        with self._lock:
            return sum(len(links) for links in self._mux_links.values())

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "api_name": self.api_name,
            "driver_version": tuple(self.driver_version),
            "protocol_version": self.protocol_version,
            "extensions": [],
            "preconfigured_url": self.preconfigured_url,
        }

    def _next_start_index(self, host_count: int) -> int:
        """Round-robin start index for load balancing new connections."""
        if host_count <= 0:
            return 0
        with self._lock:
            self._round_robin = (self._round_robin + 1) % host_count
            return self._round_robin

    def connect(
        self,
        url: str,
        user: Optional[str] = None,
        password: Optional[str] = None,
        network: Optional[Network] = None,
        **options: Any,
    ) -> ClusterConnection:
        merged: Dict[str, Any] = dict(self.default_options)
        merged.update(options)
        effective_url = self.preconfigured_url or url
        parsed = parse_url(effective_url)
        if network is None:
            network_name = merged.get("network", parsed.options.get("network", DEFAULT_NETWORK_NAME))
            network = get_network(str(network_name))
        connection = ClusterConnection(self, network, parsed, user, password, merged)
        with self._lock:
            self._connections.append(connection)
        return connection

    def _forget_connection(self, connection: ClusterConnection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def open_connections(self) -> List[ClusterConnection]:
        with self._lock:
            return [conn for conn in self._connections if not conn.closed]


#: Module-level conventional Sequoia driver (legacy installation path).
SequoiaDriver = ClusterDriverRuntime(name="sequoia-legacy", driver_version=(1, 0, 0))


def connect(
    url: str,
    user: Optional[str] = None,
    password: Optional[str] = None,
    network: Optional[Network] = None,
    **options: Any,
) -> ClusterConnection:
    """Module-level ``connect`` for the conventional Sequoia driver."""
    return SequoiaDriver.connect(url, user=user, password=password, network=network, **options)
