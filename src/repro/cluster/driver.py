"""Cluster client driver (the analogue of the Sequoia JDBC driver).

"Sequoia offers a JDBC driver with failover capabilities that needs to be
installed in client applications" (paper Section 5.3). This runtime is the
Python equivalent:

- connection URLs may list several controllers
  (``sequoia://controller1,controller2/vdb``); the driver load-balances
  new connections across them and fails over to the next controller when
  one becomes unavailable,
- the wire protocol is versioned; drivers are backward compatible with
  older controllers (the handshake downgrades),
- statements that fail because the current controller died are retried
  once on another controller, as long as no transaction is in flight.

Like the pydb runtime, Drivolution driver *packages* for Sequoia bind a
name/version to this runtime (see
:func:`repro.dbapi.driver_factory.build_sequoia_driver`).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.wire import CLUSTER_PROTOCOL_VERSION, ClusterMessageType, make_connect, make_execute
from repro.dbapi.api import Connection, Cursor
from repro.dbapi.exceptions import InterfaceError, OperationalError, ProgrammingError
from repro.dbapi.urls import ConnectionUrl, parse_url
from repro.errors import TransportError
from repro.netsim.registry import DEFAULT_NETWORK_NAME, get_network
from repro.netsim.transport import Channel, Network


class ClusterCursor(Cursor):
    """Cursor over the controller EXECUTE/RESULT exchange."""

    def __init__(self, connection: "ClusterConnection") -> None:
        self._connection = connection
        self._rows: List[Tuple[Any, ...]] = []
        self._index = 0
        self._columns: List[str] = []
        self._rowcount = -1
        self._closed = False

    @property
    def description(self) -> Optional[List[Tuple]]:
        if not self._columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._columns]

    @property
    def rowcount(self) -> int:
        return self._rowcount

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> "ClusterCursor":
        if self._closed:
            raise InterfaceError("cursor is closed")
        result = self._connection._execute(sql, params or {})
        self._columns = list(result.get("columns", []))
        self._rows = [tuple(row) for row in result.get("rows", [])]
        self._index = 0
        self._rowcount = int(result.get("rowcount", -1))
        return self

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        if self._index >= len(self._rows):
            return None
        row = self._rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        count = size if size is not None else self.arraysize
        rows = self._rows[self._index : self._index + count]
        self._index += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows = self._rows[self._index :]
        self._index = len(self._rows)
        return rows

    def close(self) -> None:
        self._closed = True
        self._rows = []


class ClusterConnection(Connection):
    """A failover-capable connection to a controller group."""

    def __init__(
        self,
        driver: "ClusterDriverRuntime",
        network: Network,
        url: ConnectionUrl,
        user: Optional[str],
        password: Optional[str],
        options: Dict[str, Any],
    ) -> None:
        self._driver = driver
        self._network = network
        self._url = url
        self._user = user
        self._password = password
        self._options = options
        self._channel: Optional[Channel] = None
        self._controller_id: Optional[str] = None
        self._closed = False
        self._in_transaction = False
        self._lock = threading.Lock()
        self.statements_executed = 0
        self.failovers = 0
        self._connect_to_any()

    # -- connection establishment with failover -----------------------------------

    def _connect_to_any(self, exclude: Optional[str] = None) -> None:
        # Abandoning the current channel either way: close it so the
        # controller's session ends too. A failover away from a *healthy*
        # controller (e.g. one answering controller_recovering) would
        # otherwise leak its server-side session for the process lifetime.
        if self._channel is not None:
            try:
                self._channel.close()
            except Exception:
                pass
            self._channel = None
        hosts = list(self._url.hosts)
        start = self._driver._next_start_index(len(hosts))
        ordered = hosts[start:] + hosts[:start]
        if exclude is not None:
            ordered = [host for host in ordered if host != exclude] or ordered
        last_error: Optional[Exception] = None
        for host in ordered:
            try:
                channel = self._network.connect(host, timeout=5.0)
                channel.send(
                    make_connect(
                        virtual_database=self._url.database,
                        user=self._user,
                        password=self._password,
                        protocol_version=self._driver.protocol_version,
                        options={key: str(value) for key, value in self._options.items()},
                    )
                )
                reply = channel.recv(timeout=10.0)
            except TransportError as exc:
                last_error = exc
                continue
            if reply.get("type") == ClusterMessageType.ERROR:
                last_error = OperationalError(
                    f"[{reply.get('code')}] {reply.get('message')}"
                )
                channel.close()
                continue
            if reply.get("type") != ClusterMessageType.CONNECT_OK:
                last_error = InterfaceError(f"unexpected handshake reply {reply.get('type')!r}")
                channel.close()
                continue
            self._channel = channel
            self._controller_id = str(reply.get("controller_id", host))
            self._current_host = host
            return
        raise OperationalError(f"no controller reachable among {hosts!r}: {last_error}")

    # -- statement execution ---------------------------------------------------------

    def _execute(self, sql: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise InterfaceError("connection is closed")
        with self._lock:
            # One attempt per configured controller: a dead controller and
            # a sibling busy replaying its recovery log (error code
            # ``controller_recovering``) both push the statement to the
            # next host. ``failovers`` counts *successful* reconnects —
            # a reconnect that fails raises without bumping the counter.
            attempts = max(2, len(self._url.hosts))
            for attempt in range(attempts):
                try:
                    return self._execute_once(sql, params)
                except OperationalError:
                    # Transparent failover: only safe outside a transaction
                    # — mid-transaction the controller's session (and the
                    # transaction it owns) is gone, so surface the error
                    # rather than silently retrying against a sibling that
                    # never saw the transaction's earlier statements.
                    if self._in_transaction:
                        self._closed = True
                        raise
                    if attempt + 1 >= attempts:
                        raise
                    self._connect_to_any(exclude=getattr(self, "_current_host", None))
                    self.failovers += 1
            raise OperationalError("unreachable")  # pragma: no cover

    def _execute_once(self, sql: str, params: Dict[str, Any]) -> Dict[str, Any]:
        assert self._channel is not None
        try:
            self._channel.send(make_execute(sql, params))
            reply = self._channel.recv(timeout=30.0)
        except TransportError as exc:
            raise OperationalError(f"controller connection lost: {exc}") from exc
        if reply.get("type") == ClusterMessageType.ERROR:
            code = reply.get("code")
            message = f"[{code}] {reply.get('message')}"
            if code in ("execution_failed",):
                raise ProgrammingError(message)
            raise OperationalError(message)
        if reply.get("type") != ClusterMessageType.RESULT:
            raise InterfaceError(f"unexpected reply {reply.get('type')!r}")
        self.statements_executed += 1
        return reply

    # -- DB-API -------------------------------------------------------------------------

    def cursor(self) -> ClusterCursor:
        if self._closed:
            raise InterfaceError("connection is closed")
        return ClusterCursor(self)

    def begin(self) -> None:
        self._execute("BEGIN", {})
        self._in_transaction = True

    def commit(self) -> None:
        if not self._in_transaction:
            return
        self._execute("COMMIT", {})
        self._in_transaction = False

    def rollback(self) -> None:
        if not self._in_transaction:
            return
        self._execute("ROLLBACK", {})
        self._in_transaction = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._channel is not None:
            try:
                self._channel.send({"type": ClusterMessageType.CLOSE})
            except TransportError:
                pass
            self._channel.close()
        self._driver._forget_connection(self)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    @property
    def controller_id(self) -> Optional[str]:
        """Which controller this connection is currently attached to."""
        return self._controller_id

    @property
    def driver_info(self) -> Dict[str, Any]:
        return self._driver.info()


class ClusterDriverRuntime:
    """Parameterised Sequoia-like driver runtime."""

    api_name = "SEQUOIA"

    def __init__(
        self,
        name: str = "sequoia-driver",
        driver_version: Tuple[int, int, int] = (1, 0, 0),
        protocol_version: int = CLUSTER_PROTOCOL_VERSION,
        preconfigured_url: Optional[str] = None,
        default_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.driver_version = tuple(driver_version)
        self.protocol_version = protocol_version
        self.preconfigured_url = preconfigured_url
        self.default_options = dict(default_options or {})
        self._connections: List[ClusterConnection] = []
        self._round_robin = 0
        self._lock = threading.Lock()

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "api_name": self.api_name,
            "driver_version": tuple(self.driver_version),
            "protocol_version": self.protocol_version,
            "extensions": [],
            "preconfigured_url": self.preconfigured_url,
        }

    def _next_start_index(self, host_count: int) -> int:
        """Round-robin start index for load balancing new connections."""
        if host_count <= 0:
            return 0
        with self._lock:
            self._round_robin = (self._round_robin + 1) % host_count
            return self._round_robin

    def connect(
        self,
        url: str,
        user: Optional[str] = None,
        password: Optional[str] = None,
        network: Optional[Network] = None,
        **options: Any,
    ) -> ClusterConnection:
        merged: Dict[str, Any] = dict(self.default_options)
        merged.update(options)
        effective_url = self.preconfigured_url or url
        parsed = parse_url(effective_url)
        if network is None:
            network_name = merged.get("network", parsed.options.get("network", DEFAULT_NETWORK_NAME))
            network = get_network(str(network_name))
        connection = ClusterConnection(self, network, parsed, user, password, merged)
        with self._lock:
            self._connections.append(connection)
        return connection

    def _forget_connection(self, connection: ClusterConnection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def open_connections(self) -> List[ClusterConnection]:
        with self._lock:
            return [conn for conn in self._connections if not conn.closed]


#: Module-level conventional Sequoia driver (legacy installation path).
SequoiaDriver = ClusterDriverRuntime(name="sequoia-legacy", driver_version=(1, 0, 0))


def connect(
    url: str,
    user: Optional[str] = None,
    password: Optional[str] = None,
    network: Optional[Network] = None,
    **options: Any,
) -> ClusterConnection:
    """Module-level ``connect`` for the conventional Sequoia driver."""
    return SequoiaDriver.connect(url, user=user, password=password, network=network, **options)
