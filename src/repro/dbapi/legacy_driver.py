"""A conventional, locally-installed database driver.

This is what the paper calls the legacy situation: the driver is installed
on the client machine (here: imported as a regular module), its version is
frozen at install time, and upgrading it requires touching the client.
"Application 3" in Figure 1 keeps using such a driver while other
applications have moved to Drivolution; the external Drivolution server of
Section 4.1.3 also uses one to query its legacy database.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dbapi.runtime import RuntimeConnection, RuntimeDriver
from repro.dbserver.wire import PROTOCOL_VERSION
from repro.netsim.transport import Network

#: The module-level driver instance, analogous to an installed vendor driver.
LegacyDriver = RuntimeDriver(
    name="pydb-legacy",
    driver_version=(1, 0, 0),
    protocol_version=PROTOCOL_VERSION,
)


def connect(
    url: str,
    user: Optional[str] = None,
    password: Optional[str] = None,
    network: Optional[Network] = None,
    **options: Any,
) -> RuntimeConnection:
    """Module-level ``connect`` in the style of every DB-API driver."""
    return LegacyDriver.connect(url, user=user, password=password, network=network, **options)
