"""DB-API 2.0 Connection and Cursor interfaces.

These abstract classes define the surface that applications (and the
Drivolution bootloader, which wraps them) program against — the Python
analogue of ``java.sql.Connection`` / ``Statement``. Concrete
implementations live in :mod:`repro.dbapi.runtime` (database wire
protocol) and :mod:`repro.cluster.driver` (cluster protocol).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Cursor(ABC):
    """DB-API cursor."""

    arraysize: int = 1

    @property
    @abstractmethod
    def description(self) -> Optional[List[Tuple]]:
        """Column descriptions of the last query (name, type, ...)."""

    @property
    @abstractmethod
    def rowcount(self) -> int:
        """Number of rows affected/returned by the last statement."""

    @abstractmethod
    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> "Cursor":
        """Execute one statement with optional named parameters."""

    @abstractmethod
    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """Fetch the next result row, or None when exhausted."""

    @abstractmethod
    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Fetch up to ``size`` rows (``arraysize`` by default)."""

    @abstractmethod
    def fetchall(self) -> List[Tuple[Any, ...]]:
        """Fetch all remaining rows."""

    @abstractmethod
    def close(self) -> None:
        """Close the cursor."""

    def executemany(self, sql: str, seq_of_params: Sequence[Dict[str, Any]]) -> "Cursor":
        """Execute ``sql`` once per parameter set (default implementation)."""
        for params in seq_of_params:
            self.execute(sql, params)
        return self

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Connection(ABC):
    """DB-API connection with the extra introspection Drivolution needs.

    Beyond PEP 249, connections expose:

    - :attr:`driver_info` — name and versions of the driver that produced
      the connection (so experiments can verify which driver generation a
      connection is using after an upgrade),
    - :attr:`in_transaction` — whether a transaction is in flight (the
      ``AFTER_COMMIT`` expiration policy needs this),
    - :meth:`supports` — feature probes for extension packages (GIS, NLS,
      Kerberos; paper Section 5.4.1).
    """

    @abstractmethod
    def cursor(self) -> Cursor:
        """Create a new cursor."""

    @abstractmethod
    def begin(self) -> None:
        """Explicitly start a transaction."""

    @abstractmethod
    def commit(self) -> None:
        """Commit the current transaction."""

    @abstractmethod
    def rollback(self) -> None:
        """Roll back the current transaction."""

    @abstractmethod
    def close(self) -> None:
        """Close the connection, rolling back any open transaction."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """Whether the connection has been closed."""

    @property
    @abstractmethod
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is currently open."""

    @property
    @abstractmethod
    def driver_info(self) -> Dict[str, Any]:
        """Metadata about the driver behind this connection."""

    def supports(self, feature: str) -> bool:
        """Whether the driver behind this connection bundles ``feature``."""
        return feature in self.driver_info.get("extensions", [])

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
