"""DB-API 2.0 driver stack — the Python analogue of the paper's JDBC drivers.

Contents:

- :mod:`repro.dbapi.exceptions` — the DB-API exception hierarchy.
- :mod:`repro.dbapi.api` — ``Connection`` / ``Cursor`` interfaces.
- :mod:`repro.dbapi.urls` — connection URL parsing
  (``pydb://host:port/database?opt=v``).
- :mod:`repro.dbapi.runtime` — the driver runtime: a concrete DB-API
  implementation over the database wire protocol, parameterised by
  driver/protocol version, pre-configured URLs and extension features.
  Generated driver *packages* (the BLOBs Drivolution stores in the
  database) are thin wrappers binding specific parameters to this runtime,
  just as vendor JDBC jars wrap a common client library.
- :mod:`repro.dbapi.legacy_driver` — a conventional, locally-installed
  driver (what "Application 3" in Figure 1 uses without Drivolution).
- :mod:`repro.dbapi.pool` — a client-side connection pool.
- :mod:`repro.dbapi.driver_factory` — renders driver package source code
  for every driver family used in the experiments.
"""

from repro.dbapi.exceptions import (
    Warning,
    Error,
    InterfaceError,
    DatabaseError,
    DataError,
    OperationalError,
    IntegrityError,
    InternalError,
    ProgrammingError,
    NotSupportedError,
)
from repro.dbapi.api import Connection, Cursor
from repro.dbapi.urls import ConnectionUrl, parse_url
from repro.dbapi.runtime import RuntimeDriver
from repro.dbapi.legacy_driver import LegacyDriver, connect
from repro.dbapi.pool import ConnectionPool, PooledConnection

__all__ = [
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "Connection",
    "Cursor",
    "ConnectionUrl",
    "parse_url",
    "RuntimeDriver",
    "LegacyDriver",
    "connect",
    "ConnectionPool",
    "PooledConnection",
]

apilevel = "2.0"
threadsafety = 1
paramstyle = "named"
