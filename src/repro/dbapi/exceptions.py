"""DB-API 2.0 exception hierarchy (PEP 249)."""

from repro.errors import DriverError


class Warning(DriverError):  # noqa: A001 - name mandated by PEP 249
    """Important warnings (PEP 249)."""


class Error(DriverError):
    """Base class of all DB-API errors (PEP 249)."""


class InterfaceError(Error):
    """Error related to the database interface rather than the database."""


class DatabaseError(Error):
    """Error related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad values, out of range...)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (connection lost, ...)."""


class IntegrityError(DatabaseError):
    """Relational integrity violated (constraint failures)."""


class InternalError(DatabaseError):
    """The database encountered an internal error."""


class ProgrammingError(DatabaseError):
    """Programming errors (bad SQL, wrong parameters, table not found)."""


class NotSupportedError(DatabaseError):
    """A method or API is not supported by the database/driver."""
