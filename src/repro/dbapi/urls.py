"""Connection URL parsing.

URLs follow the familiar JDBC-like shape::

    pydb://dbhost:5432/mydb?network=default&feature=gis
    sequoia://controller1:25322,controller2:25322/vdb

- the scheme names the driver family (``pydb`` for the database wire
  protocol, ``sequoia`` for the cluster middleware, ``drivolution`` for
  bootloader-only URLs),
- multiple comma-separated hosts are allowed (Sequoia multi-controller
  URLs, paper Section 5.3.2),
- query options become a string dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dbapi.exceptions import InterfaceError


@dataclass(frozen=True)
class ConnectionUrl:
    """A parsed connection URL."""

    scheme: str
    hosts: tuple
    database: str
    options: Dict[str, str] = field(default_factory=dict)

    @property
    def primary_host(self) -> str:
        return self.hosts[0]

    def with_database(self, database: str) -> "ConnectionUrl":
        return ConnectionUrl(self.scheme, self.hosts, database, dict(self.options))

    def render(self) -> str:
        """Render back to a URL string."""
        hosts = ",".join(self.hosts)
        url = f"{self.scheme}://{hosts}/{self.database}"
        if self.options:
            query = "&".join(f"{key}={value}" for key, value in sorted(self.options.items()))
            url = f"{url}?{query}"
        return url


def parse_url(url: str) -> ConnectionUrl:
    """Parse a connection URL, raising :class:`InterfaceError` on bad input."""
    if not isinstance(url, str) or "://" not in url:
        raise InterfaceError(f"invalid connection URL: {url!r}")
    scheme, _, rest = url.partition("://")
    if not scheme:
        raise InterfaceError(f"missing scheme in connection URL: {url!r}")
    options: Dict[str, str] = {}
    if "?" in rest:
        rest, _, query = rest.partition("?")
        for pair in query.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            options[key] = value
    host_part, _, database = rest.partition("/")
    if not host_part:
        raise InterfaceError(f"missing host in connection URL: {url!r}")
    hosts: List[str] = [host.strip() for host in host_part.split(",") if host.strip()]
    if not hosts:
        raise InterfaceError(f"missing host in connection URL: {url!r}")
    return ConnectionUrl(scheme=scheme, hosts=tuple(hosts), database=database, options=options)
