"""Driver runtime: a concrete DB-API implementation over the database wire protocol.

A *driver package* in this repro is a small piece of Python source code
(stored as a BLOB in the database, per the paper's Table 1) that binds
specific parameters — driver version, wire protocol version, bundled
extensions, optional pre-configured URL — to this runtime. That mirrors
how a vendor's JDBC jar wraps a shared client library: the jar is what
gets distributed and versioned, the library does the actual talking.

The runtime implements:

- connection establishment with protocol-version negotiation and the
  authentication method appropriate to the bundled extensions
  (``kerberos`` extension → token authentication),
- pre-configured URLs: when the package carries ``preconfigured_url`` the
  host in the application's URL is ignored and the driver always connects
  to its baked-in target (the master/slave failover mechanism of paper
  Section 5.2),
- DB-API cursors over the EXECUTE/RESULT wire messages,
- feature probes for extension packages (GIS, NLS, ...).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.dbapi.api import Connection, Cursor
from repro.dbapi.exceptions import (
    InterfaceError,
    IntegrityError,
    OperationalError,
    ProgrammingError,
)
from repro.dbapi.urls import ConnectionUrl, parse_url
from repro.dbserver.auth import compute_token
from repro.dbserver.wire import PROTOCOL_VERSION, MessageType, make_connect, make_execute
from repro.errors import TransportError
from repro.netsim.registry import DEFAULT_NETWORK_NAME, get_network
from repro.netsim.transport import Channel, Network

_ERROR_CODE_MAP = {
    "protocol_mismatch": OperationalError,
    "auth_failed": OperationalError,
    "auth_method_unsupported": OperationalError,
    "unknown_database": OperationalError,
    "sql_error": ProgrammingError,
    "bad_message": InterfaceError,
    "bad_handshake": InterfaceError,
    "internal_error": OperationalError,
}


def _raise_for_error(message: Dict[str, Any]) -> None:
    code = str(message.get("code", "internal_error"))
    text = str(message.get("message", "unknown server error"))
    exc_class = _ERROR_CODE_MAP.get(code, OperationalError)
    if "constraint" in text or "foreign key" in text or "duplicate primary key" in text:
        exc_class = IntegrityError
    raise exc_class(f"[{code}] {text}")


class RuntimeCursor(Cursor):
    """Cursor over the EXECUTE/RESULT exchange."""

    def __init__(self, connection: "RuntimeConnection") -> None:
        self._connection = connection
        self._rows: List[Tuple[Any, ...]] = []
        self._cursor_index = 0
        self._columns: List[str] = []
        self._rowcount = -1
        self._closed = False

    @property
    def description(self) -> Optional[List[Tuple]]:
        if not self._columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._columns]

    @property
    def rowcount(self) -> int:
        return self._rowcount

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> "RuntimeCursor":
        if self._closed:
            raise InterfaceError("cursor is closed")
        result = self._connection._execute(sql, params or {})
        self._columns = list(result.get("columns", []))
        self._rows = [tuple(row) for row in result.get("rows", [])]
        self._cursor_index = 0
        self._rowcount = int(result.get("rowcount", -1))
        return self

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        if self._cursor_index >= len(self._rows):
            return None
        row = self._rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        count = size if size is not None else self.arraysize
        rows = self._rows[self._cursor_index : self._cursor_index + count]
        self._cursor_index += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows = self._rows[self._cursor_index :]
        self._cursor_index = len(self._rows)
        return rows

    def close(self) -> None:
        self._closed = True
        self._rows = []


class RuntimeConnection(Connection):
    """A live connection produced by :class:`RuntimeDriver`."""

    def __init__(self, driver: "RuntimeDriver", channel: Channel, url: ConnectionUrl, session_id: str) -> None:
        self._driver = driver
        self._channel = channel
        self._url = url
        self._session_id = session_id
        self._closed = False
        self._in_transaction = False
        self._lock = threading.Lock()
        #: Number of statements executed on this connection (observability
        #: for experiments: proves traffic kept flowing across an upgrade).
        self.statements_executed = 0

    # -- internals ----------------------------------------------------------

    def _execute(self, sql: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise InterfaceError("connection is closed")
        with self._lock:
            try:
                self._channel.send(make_execute(sql, params=params))
                reply = self._channel.recv(timeout=30.0)
            except TransportError as exc:
                self._closed = True
                raise OperationalError(f"connection lost: {exc}") from exc
        if reply.get("type") == MessageType.ERROR:
            _raise_for_error(reply)
        if reply.get("type") != MessageType.RESULT:
            raise InterfaceError(f"unexpected reply {reply.get('type')!r}")
        self.statements_executed += 1
        return reply

    # -- DB-API -------------------------------------------------------------

    def cursor(self) -> RuntimeCursor:
        if self._closed:
            raise InterfaceError("connection is closed")
        return RuntimeCursor(self)

    def begin(self) -> None:
        self._execute("BEGIN", {})
        self._in_transaction = True

    def commit(self) -> None:
        if not self._in_transaction:
            return
        self._execute("COMMIT", {})
        self._in_transaction = False

    def rollback(self) -> None:
        if not self._in_transaction:
            return
        self._execute("ROLLBACK", {})
        self._in_transaction = False

    def close(self) -> None:
        if self._closed:
            return
        try:
            if self._in_transaction:
                try:
                    self.rollback()
                except Exception:
                    pass
            self._channel.send({"type": MessageType.CLOSE})
        except TransportError:
            pass
        finally:
            self._closed = True
            self._channel.close()
            self._driver._forget_connection(self)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    @property
    def session_id(self) -> str:
        return self._session_id

    @property
    def url(self) -> ConnectionUrl:
        return self._url

    @property
    def driver_info(self) -> Dict[str, Any]:
        return self._driver.info()

    def ping(self) -> bool:
        """Check liveness of the server side of this connection."""
        if self._closed:
            return False
        with self._lock:
            try:
                self._channel.send({"type": MessageType.PING})
                reply = self._channel.recv(timeout=5.0)
            except TransportError:
                self._closed = True
                return False
        return reply.get("type") == MessageType.PONG


class RuntimeDriver:
    """A parameterised DB-API driver over the database wire protocol."""

    api_name = "PYDB-API"

    def __init__(
        self,
        name: str = "pydb-driver",
        driver_version: Tuple[int, int, int] = (1, 0, 0),
        protocol_version: int = PROTOCOL_VERSION,
        extensions: Optional[List[str]] = None,
        preconfigured_url: Optional[str] = None,
        default_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.driver_version = tuple(driver_version)
        self.protocol_version = protocol_version
        self.extensions = list(extensions or [])
        self.preconfigured_url = preconfigured_url
        self.default_options = dict(default_options or {})
        self._connections: List[RuntimeConnection] = []
        self._lock = threading.Lock()

    # -- metadata ------------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "api_name": self.api_name,
            "driver_version": tuple(self.driver_version),
            "protocol_version": self.protocol_version,
            "extensions": list(self.extensions),
            "preconfigured_url": self.preconfigured_url,
        }

    # -- connection management --------------------------------------------------

    def connect(
        self,
        url: str,
        user: Optional[str] = None,
        password: Optional[str] = None,
        network: Optional[Network] = None,
        **options: Any,
    ) -> RuntimeConnection:
        """Open a connection. Application options are merged over the
        driver's pre-configured defaults (paper Section 3.1.1)."""
        merged_options: Dict[str, Any] = dict(self.default_options)
        merged_options.update(options)
        effective_url = self.preconfigured_url or url
        parsed = parse_url(effective_url)
        if network is None:
            network_name = merged_options.get("network", parsed.options.get("network", DEFAULT_NETWORK_NAME))
            network = get_network(str(network_name))
        try:
            channel = network.connect(parsed.primary_host, timeout=5.0)
        except TransportError as exc:
            raise OperationalError(f"cannot reach database at {parsed.primary_host}: {exc}") from exc
        auth_method = "password"
        auth_token = None
        if "kerberos" in self.extensions and merged_options.get("realm_secret"):
            auth_method = "token"
            auth_token = compute_token(str(merged_options["realm_secret"]), user)
        connect_message = make_connect(
            database=parsed.database,
            user=user,
            password=password,
            protocol_version=self.protocol_version,
            auth_method=auth_method,
            auth_token=auth_token,
            options={key: str(value) for key, value in merged_options.items()},
        )
        try:
            channel.send(connect_message)
            reply = channel.recv(timeout=10.0)
        except TransportError as exc:
            channel.close()
            raise OperationalError(f"handshake with {parsed.primary_host} failed: {exc}") from exc
        if reply.get("type") == MessageType.ERROR:
            channel.close()
            _raise_for_error(reply)
        if reply.get("type") != MessageType.CONNECT_OK:
            channel.close()
            raise InterfaceError(f"unexpected handshake reply {reply.get('type')!r}")
        connection = RuntimeConnection(self, channel, parsed, str(reply.get("session_id", "")))
        with self._lock:
            self._connections.append(connection)
        return connection

    def _forget_connection(self, connection: RuntimeConnection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def open_connections(self) -> List[RuntimeConnection]:
        """Currently open connections created by this driver instance."""
        with self._lock:
            return [conn for conn in self._connections if not conn.closed]

    def close_all(self) -> None:
        """Close every connection created by this driver instance."""
        for connection in self.open_connections():
            connection.close()

    # -- feature probes -----------------------------------------------------------

    def supports(self, feature: str) -> bool:
        return feature in self.extensions
