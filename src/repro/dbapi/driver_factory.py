"""Driver package factory.

Renders the Python source of every driver family used in the experiments
and wraps it into :class:`~repro.core.package.DriverPackage` objects ready
to be inserted into a Drivolution server:

- ``build_pydb_driver`` — a database driver for the ``pydb`` wire
  protocol, parameterised by driver version, protocol version, bundled
  extensions, and optional pre-configured URL (the failover mechanism of
  paper Section 5.2);
- ``build_sequoia_driver`` — a cluster driver for the Sequoia-like
  middleware, with multi-controller failover;
- ``pydb_assembler`` — a :class:`~repro.core.assembly.DriverAssembler`
  preloaded with the GIS / NLS / Kerberos extension packages of paper
  Section 5.4.1.

The generated source follows the same contract the bootloader expects of
any driver package: module-level ``connect(url, **options)`` plus metadata
constants (``DRIVER_NAME``, ``DRIVER_VERSION``, ``API_NAME``,
``PROTOCOL_VERSION``, ``EXTENSIONS``, ``PRECONFIGURED_URL``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.assembly import DriverAssembler, ExtensionPackage
from repro.core.constants import BinaryFormat
from repro.core.package import DriverPackage
from repro.dbserver.wire import PROTOCOL_VERSION

PYDB_API_NAME = "PYDB-API"
SEQUOIA_API_NAME = "SEQUOIA"

_PYDB_TEMPLATE = '''"""Auto-generated pydb driver package: {name} v{version_string}."""

DRIVER_NAME = {name!r}
DRIVER_VERSION = {driver_version!r}
API_NAME = {api_name!r}
PROTOCOL_VERSION = {protocol_version!r}
EXTENSIONS = {extensions!r}
PRECONFIGURED_URL = {preconfigured_url!r}
DEFAULT_OPTIONS = {default_options!r}
FEATURES = {{}}

from repro.dbapi.runtime import RuntimeDriver

_runtime = RuntimeDriver(
    name=DRIVER_NAME,
    driver_version=DRIVER_VERSION,
    protocol_version=PROTOCOL_VERSION,
    extensions=list(EXTENSIONS),
    preconfigured_url=PRECONFIGURED_URL,
    default_options=dict(DEFAULT_OPTIONS),
)


def connect(url, user=None, password=None, network=None, **options):
    """DB-API entry point used by applications and the bootloader."""
    return _runtime.connect(url, user=user, password=password, network=network, **options)


def driver_runtime():
    """Expose the runtime for tests and diagnostics."""
    return _runtime
'''

_SEQUOIA_TEMPLATE = '''"""Auto-generated Sequoia cluster driver package: {name} v{version_string}."""

DRIVER_NAME = {name!r}
DRIVER_VERSION = {driver_version!r}
API_NAME = {api_name!r}
PROTOCOL_VERSION = {protocol_version!r}
EXTENSIONS = {extensions!r}
PRECONFIGURED_URL = {preconfigured_url!r}
DEFAULT_OPTIONS = {default_options!r}
FEATURES = {{}}

from repro.cluster.driver import ClusterDriverRuntime

_runtime = ClusterDriverRuntime(
    name=DRIVER_NAME,
    driver_version=DRIVER_VERSION,
    protocol_version=PROTOCOL_VERSION,
    preconfigured_url=PRECONFIGURED_URL,
    default_options=dict(DEFAULT_OPTIONS),
)


def connect(url, user=None, password=None, network=None, **options):
    """DB-API entry point used by applications and the bootloader."""
    return _runtime.connect(url, user=user, password=password, network=network, **options)


def driver_runtime():
    """Expose the runtime for tests and diagnostics."""
    return _runtime
'''


def render_pydb_source(
    name: str,
    driver_version: Tuple[int, int, int] = (1, 0, 0),
    protocol_version: int = PROTOCOL_VERSION,
    extensions: Iterable[str] = (),
    preconfigured_url: Optional[str] = None,
    default_options: Optional[Dict[str, Any]] = None,
) -> str:
    """Render the Python source of a pydb driver package."""
    return _PYDB_TEMPLATE.format(
        name=name,
        version_string=".".join(str(part) for part in driver_version),
        driver_version=tuple(driver_version),
        api_name=PYDB_API_NAME,
        protocol_version=protocol_version,
        extensions=list(extensions),
        preconfigured_url=preconfigured_url,
        default_options=dict(default_options or {}),
    )


def build_pydb_driver(
    name: str,
    driver_version: Tuple[int, int, int] = (1, 0, 0),
    protocol_version: int = PROTOCOL_VERSION,
    extensions: Iterable[str] = (),
    preconfigured_url: Optional[str] = None,
    default_options: Optional[Dict[str, Any]] = None,
    platform: Optional[str] = None,
    api_version: Optional[Tuple[int, int]] = None,
    binary_format: str = BinaryFormat.PYSRC,
) -> DriverPackage:
    """Build a pydb driver package ready to install in a Drivolution server."""
    source = render_pydb_source(
        name=name,
        driver_version=driver_version,
        protocol_version=protocol_version,
        extensions=extensions,
        preconfigured_url=preconfigured_url,
        default_options=default_options,
    )
    return DriverPackage.from_source(
        name=name,
        api_name=PYDB_API_NAME,
        source=source,
        binary_format=binary_format,
        api_version=api_version,
        platform=platform,
        driver_version=driver_version,
        metadata={"extensions": list(extensions)},
    )


def render_sequoia_source(
    name: str,
    driver_version: Tuple[int, int, int] = (1, 0, 0),
    protocol_version: int = 1,
    preconfigured_url: Optional[str] = None,
    default_options: Optional[Dict[str, Any]] = None,
) -> str:
    """Render the Python source of a Sequoia cluster driver package."""
    return _SEQUOIA_TEMPLATE.format(
        name=name,
        version_string=".".join(str(part) for part in driver_version),
        driver_version=tuple(driver_version),
        api_name=SEQUOIA_API_NAME,
        protocol_version=protocol_version,
        extensions=[],
        preconfigured_url=preconfigured_url,
        default_options=dict(default_options or {}),
    )


def build_sequoia_driver(
    name: str,
    driver_version: Tuple[int, int, int] = (1, 0, 0),
    protocol_version: int = 1,
    preconfigured_url: Optional[str] = None,
    default_options: Optional[Dict[str, Any]] = None,
    platform: Optional[str] = None,
    binary_format: str = BinaryFormat.PYSRC,
) -> DriverPackage:
    """Build a Sequoia cluster driver package."""
    source = render_sequoia_source(
        name=name,
        driver_version=driver_version,
        protocol_version=protocol_version,
        preconfigured_url=preconfigured_url,
        default_options=default_options,
    )
    return DriverPackage.from_source(
        name=name,
        api_name=SEQUOIA_API_NAME,
        source=source,
        binary_format=binary_format,
        platform=platform,
        driver_version=driver_version,
    )


# -- extension packages (paper Section 5.4.1) ---------------------------------------

_GIS_FRAGMENT = '''
def geometry_from_wkt(wkt):
    """Minimal GIS helper: parse 'POINT(x y)' well-known text."""
    text = wkt.strip()
    if not text.upper().startswith("POINT"):
        raise ValueError("only POINT geometries are supported by this extension")
    coords = text[text.index("(") + 1 : text.rindex(")")].split()
    return {"type": "Point", "coordinates": [float(coords[0]), float(coords[1])]}

FEATURES["gis"] = geometry_from_wkt
'''

_KERBEROS_FRAGMENT = '''
import hashlib as _hashlib

def kerberos_token(realm_secret, user):
    """Compute the token expected by the server's token authenticator."""
    return _hashlib.sha256(f"{realm_secret}:{user}".encode("utf-8")).hexdigest()

FEATURES["kerberos"] = kerberos_token
'''


def _nls_fragment(locale: str, messages: Dict[str, str]) -> str:
    return (
        f"\nNLS_MESSAGES_{locale.upper()} = {messages!r}\n"
        f"FEATURES['nls-{locale}'] = NLS_MESSAGES_{locale.upper()}\n"
    )


def _nls_messages(locale: str) -> Dict[str, str]:
    catalog = {
        "fr": {"connection_refused": "connexion refusée", "timeout": "délai dépassé"},
        "de": {"connection_refused": "Verbindung abgelehnt", "timeout": "Zeitüberschreitung"},
        "ja": {"connection_refused": "接続が拒否されました", "timeout": "タイムアウト"},
    }
    return catalog.get(locale, {"connection_refused": "connection refused", "timeout": "timeout"})


def pydb_assembler(
    base_name: str = "pydb-base",
    driver_version: Tuple[int, int, int] = (2, 0, 0),
    protocol_version: int = PROTOCOL_VERSION,
    payload_size: int = 4096,
    locales: Iterable[str] = ("fr", "de", "ja"),
) -> DriverAssembler:
    """A driver assembler preloaded with GIS, Kerberos and NLS extensions.

    ``payload_size`` controls how many bytes of bulk data each extension
    carries, so that delivered-size comparisons are meaningful without
    being enormous.
    """
    base_source = render_pydb_source(
        name=base_name, driver_version=driver_version, protocol_version=protocol_version
    )
    assembler = DriverAssembler(
        base_name=base_name,
        api_name=PYDB_API_NAME,
        base_source=base_source,
        driver_version=driver_version,
    )
    assembler.register_extension(
        ExtensionPackage(
            name="gis",
            source_fragment=_GIS_FRAGMENT,
            payload=os.urandom(payload_size),
            description="Geographic Information System extension",
        )
    )
    assembler.register_extension(
        ExtensionPackage(
            name="kerberos",
            source_fragment=_KERBEROS_FRAGMENT,
            payload=os.urandom(payload_size * 3),
            description="Kerberos security libraries",
        )
    )
    for locale in locales:
        assembler.register_extension(
            ExtensionPackage(
                name=f"nls-{locale}",
                source_fragment=_nls_fragment(locale, _nls_messages(locale)),
                payload=os.urandom(payload_size // 2),
                description=f"National Language Support ({locale})",
            )
        )
    return assembler


def driver_family(
    count: int,
    base_name: str = "pydb",
    start_version: Tuple[int, int, int] = (1, 0, 0),
    protocol_version: int = PROTOCOL_VERSION,
    **kwargs: Any,
) -> List[DriverPackage]:
    """Generate ``count`` successive versions of the same driver.

    Used by upgrade experiments that need a stream of releases.
    """
    packages: List[DriverPackage] = []
    major, minor, micro = start_version
    for index in range(count):
        version = (major, minor + index, micro)
        packages.append(
            build_pydb_driver(
                name=f"{base_name}-{major}.{minor + index}.{micro}",
                driver_version=version,
                protocol_version=protocol_version,
                **kwargs,
            )
        )
    return packages
