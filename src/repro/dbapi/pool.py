"""Client-side connection pool.

The paper points out (Section 3.4.2) that the ``AFTER_CLOSE`` expiration
policy interacts badly with connection pools, because pooled connections
are rarely closed by the application. The pool here reproduces that
behaviour: connections are created by a factory, handed out, and returned
to the idle set instead of being closed. It also supports the operations
the bootloader and the experiments need — draining, invalidation, and
statistics about how long connections have lived.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.dbapi.api import Connection
from repro.dbapi.exceptions import InterfaceError, OperationalError


@dataclass
class PooledConnection:
    """Book-keeping wrapper around a pooled connection."""

    connection: Connection
    created_at: float
    last_used_at: float
    checkouts: int = 0

    @property
    def closed(self) -> bool:
        return self.connection.closed


class ConnectionPool:
    """A bounded pool of DB-API connections."""

    def __init__(
        self,
        factory: Callable[[], Connection],
        min_size: int = 0,
        max_size: int = 10,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if min_size < 0 or max_size <= 0 or min_size > max_size:
            raise ValueError("invalid pool sizing")
        self._factory = factory
        self._min_size = min_size
        self._max_size = max_size
        self._clock = clock
        self._idle: List[PooledConnection] = []
        self._busy: List[PooledConnection] = []
        self._lock = threading.Condition()
        self._closed = False
        for _ in range(min_size):
            self._idle.append(self._create())

    # -- internals -----------------------------------------------------------

    def _create(self) -> PooledConnection:
        connection = self._factory()
        now = self._clock()
        return PooledConnection(connection=connection, created_at=now, last_used_at=now)

    def _replenish_locked(self) -> None:
        """Top the pool back up to ``min_size`` live connections.

        Closed connections dropped from the idle set used to silently
        shrink the pool below its floor; every code path that discards a
        connection calls this to restore the minimum.
        """
        if self._closed:
            return
        while len(self._idle) + len(self._busy) < self._min_size:
            try:
                self._idle.append(self._create())
            except Exception:
                # Best-effort: release()/invalidate_idle() never raised
                # before and must not start; the floor is restored by a
                # later call once the factory recovers (acquire() still
                # surfaces factory errors through its own _create path).
                return
            self._lock.notify()

    # -- pool API ------------------------------------------------------------

    def acquire(self, timeout: Optional[float] = 5.0) -> Connection:
        """Check out a connection, creating one if under ``max_size``."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise InterfaceError("connection pool is closed")
                # Prefer a live idle connection; dead ones are dropped and
                # replaced so the pool never shrinks below min_size.
                dropped_dead = False
                while self._idle:
                    pooled = self._idle.pop()
                    if pooled.closed:
                        dropped_dead = True
                        continue
                    pooled.checkouts += 1
                    pooled.last_used_at = self._clock()
                    self._busy.append(pooled)
                    return pooled.connection
                if dropped_dead:
                    self._replenish_locked()
                    if self._idle:
                        continue
                if len(self._busy) < self._max_size:
                    pooled = self._create()
                    pooled.checkouts += 1
                    self._busy.append(pooled)
                    return pooled.connection
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    raise OperationalError("timed out waiting for a pooled connection")
                self._lock.wait(timeout=remaining)

    def release(self, connection: Connection) -> None:
        """Return a connection to the pool (closed connections are dropped)."""
        with self._lock:
            pooled = next((item for item in self._busy if item.connection is connection), None)
            if pooled is None:
                raise InterfaceError("connection does not belong to this pool")
            self._busy.remove(pooled)
            if not pooled.closed and not self._closed:
                pooled.last_used_at = self._clock()
                self._idle.append(pooled)
            else:
                self._safe_close(pooled)
                self._replenish_locked()
            self._lock.notify()

    def invalidate_idle(self) -> int:
        """Close all idle connections (returns how many were closed).

        The pool is immediately replenished back to ``min_size`` with fresh
        connections from the factory, so invalidation swaps stale
        connections for new ones instead of shrinking the pool."""
        with self._lock:
            count = len(self._idle)
            for pooled in self._idle:
                self._safe_close(pooled)
            self._idle.clear()
            self._replenish_locked()
            self._lock.notify_all()
        return count

    def close(self) -> None:
        """Close the pool and every idle connection. Busy connections are
        closed when released."""
        with self._lock:
            self._closed = True
            for pooled in self._idle:
                self._safe_close(pooled)
            self._idle.clear()
            self._lock.notify_all()

    @staticmethod
    def _safe_close(pooled: PooledConnection) -> None:
        try:
            pooled.connection.close()
        except Exception:  # pragma: no cover - close must never raise here
            pass

    # -- observability ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "idle": len(self._idle),
                "busy": len(self._busy),
                "min_size": self._min_size,
                "max_size": self._max_size,
                "closed": self._closed,
            }

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._idle) + len(self._busy)
