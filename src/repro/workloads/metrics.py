"""Metrics collection for experiments.

Records per-request outcomes against a (possibly simulated) clock and
derives the quantities the experiments report: success/failure counts,
error windows (downtime), latency statistics and driver-generation
breakdowns (which driver served which request — the visible effect of an
upgrade).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class RequestRecord:
    """Outcome of one application request."""

    timestamp: float
    ok: bool
    latency: float = 0.0
    error: str = ""
    driver: str = ""
    tag: str = ""


def percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0.0
    if pct <= 0:
        return min(values)
    ordered = sorted(values)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[min(max(rank, 1), len(ordered)) - 1]


@dataclass
class MetricsSummary:
    """Aggregate view of a metrics collector."""

    total: int
    succeeded: int
    failed: int
    error_window_seconds: float
    mean_latency: float
    max_latency: float
    drivers_seen: Dict[str, int]
    errors_by_type: Dict[str, int]
    #: Tail-latency percentiles over successful requests (seconds).
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests that succeeded."""
        return self.succeeded / self.total if self.total else 1.0


class MetricsCollector:
    """Thread-safe accumulator of request records."""

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._records: List[RequestRecord] = []
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def record_success(self, latency: float = 0.0, driver: str = "", tag: str = "") -> None:
        self._append(RequestRecord(self._clock(), True, latency=latency, driver=driver, tag=tag))

    def record_failure(self, error: str, latency: float = 0.0, driver: str = "", tag: str = "") -> None:
        self._append(
            RequestRecord(self._clock(), False, latency=latency, error=error, driver=driver, tag=tag)
        )

    def _append(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- queries ---------------------------------------------------------------

    def records(self) -> List[RequestRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def failures(self) -> List[RequestRecord]:
        return [record for record in self.records() if not record.ok]

    def error_window_seconds(self) -> float:
        """Length of the interval between the first and last failed request.

        This is the experiments' downtime proxy: with a steady request
        stream, the window during which requests fail is the window during
        which the application was effectively down.
        """
        failed = self.failures()
        if not failed:
            return 0.0
        return max(record.timestamp for record in failed) - min(record.timestamp for record in failed)

    def drivers_seen(self) -> Dict[str, int]:
        """How many successful requests each driver generation served."""
        breakdown: Dict[str, int] = {}
        for record in self.records():
            if record.ok and record.driver:
                breakdown[record.driver] = breakdown.get(record.driver, 0) + 1
        return breakdown

    def summary(self) -> MetricsSummary:
        records = self.records()
        succeeded = [record for record in records if record.ok]
        failed = [record for record in records if not record.ok]
        # >= 0, not > 0: a sub-clock-resolution request legitimately
        # records latency 0.0, and dropping those skewed every
        # percentile (and the mean) upward on fast in-memory runs.
        latencies = [record.latency for record in succeeded if record.latency >= 0]
        errors_by_type: Dict[str, int] = {}
        for record in failed:
            key = record.error.split(":")[0] if record.error else "unknown"
            errors_by_type[key] = errors_by_type.get(key, 0) + 1
        return MetricsSummary(
            total=len(records),
            succeeded=len(succeeded),
            failed=len(failed),
            error_window_seconds=self.error_window_seconds(),
            mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
            max_latency=max(latencies) if latencies else 0.0,
            drivers_seen=self.drivers_seen(),
            errors_by_type=errors_by_type,
            latency_p50=percentile(latencies, 50),
            latency_p95=percentile(latencies, 95),
            latency_p99=percentile(latencies, 99),
        )
