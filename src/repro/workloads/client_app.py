"""Client application simulator.

A :class:`ClientApplication` models one of the paper's "client
applications": it owns a ``connect`` callable (a conventional driver's
``connect``, a bootloader's ``connect``, or a pooled factory), issues a
simple transactional workload against its database, and records every
request outcome in a :class:`~repro.workloads.metrics.MetricsCollector`.

Applications can run their workload inline (``run_requests``) for
deterministic experiments, or on a background thread (``start``/``stop``)
for scenarios that need traffic flowing *while* an upgrade or failover
happens.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ReproError
from repro.workloads.metrics import MetricsCollector


@dataclass
class WorkloadSpec:
    """Shape of the workload an application issues.

    ``write_ratio`` is the fraction of requests that are INSERTs (the rest
    are SELECTs); ``use_transactions`` wraps each write in BEGIN/COMMIT,
    which matters for the AFTER_COMMIT expiration policy experiments.
    """

    table: str = "app_events"
    write_ratio: float = 0.5
    use_transactions: bool = False
    setup_sql: Optional[str] = None

    def default_setup_sql(self) -> str:
        return (
            f"CREATE TABLE IF NOT EXISTS {self.table} "
            "(id INTEGER NOT NULL PRIMARY KEY, client VARCHAR, payload VARCHAR)"
        )


class ClientApplication:
    """One simulated client application."""

    _id_lock = threading.Lock()
    _next_row_id = 0

    def __init__(
        self,
        name: str,
        connect: Callable[..., Any],
        url: str,
        spec: Optional[WorkloadSpec] = None,
        connect_kwargs: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.time,
        reconnect_per_request: bool = False,
    ) -> None:
        self.name = name
        self._connect = connect
        self.url = url
        self.spec = spec or WorkloadSpec()
        self._connect_kwargs = dict(connect_kwargs or {})
        self.metrics = MetricsCollector(clock=clock)
        self._clock = clock
        self._reconnect_per_request = reconnect_per_request
        self._connection: Optional[Any] = None
        self._request_counter = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._lock = threading.RLock()

    # -- connection handling ------------------------------------------------------

    def _get_connection(self) -> Any:
        with self._lock:
            if self._connection is None or getattr(self._connection, "closed", False):
                self._connection = self._connect(self.url, **self._connect_kwargs)
            return self._connection

    def drop_connection(self) -> None:
        """Close the cached connection so the next request reconnects."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except Exception:
                    pass
                self._connection = None

    def current_driver_name(self) -> str:
        with self._lock:
            if self._connection is None or getattr(self._connection, "closed", False):
                return ""
            info = getattr(self._connection, "driver_info", {})
            return str(info.get("name", ""))

    # -- setup -----------------------------------------------------------------------

    def ensure_schema(self) -> None:
        """Create the workload table (idempotent)."""
        connection = self._get_connection()
        cursor = connection.cursor()
        cursor.execute(self.spec.setup_sql or self.spec.default_setup_sql())
        cursor.close()

    # -- workload ---------------------------------------------------------------------

    @classmethod
    def _allocate_row_id(cls) -> int:
        with cls._id_lock:
            cls._next_row_id += 1
            return cls._next_row_id

    def run_requests(self, count: int, tag: str = "") -> None:
        """Issue ``count`` requests synchronously, recording each outcome."""
        for index in range(count):
            self._one_request(index, tag)

    def _one_request(self, index: int, tag: str) -> None:
        started = time.perf_counter()
        driver_name = ""
        try:
            if self._reconnect_per_request:
                self.drop_connection()
            connection = self._get_connection()
            driver_name = str(getattr(connection, "driver_info", {}).get("name", ""))
            cursor = connection.cursor()
            self._request_counter += 1
            # Interleave writes and reads so the requested ratio holds even
            # for small request counts: request k is a write when the integer
            # part of k * ratio advances.
            ratio = self.spec.write_ratio
            is_write = int(self._request_counter * ratio) != int((self._request_counter - 1) * ratio)
            if is_write:
                row_id = self._allocate_row_id()
                if self.spec.use_transactions:
                    connection.begin()
                cursor.execute(
                    f"INSERT INTO {self.spec.table} (id, client, payload) "
                    "VALUES ($id, $client, $payload)",
                    {"id": row_id, "client": self.name, "payload": f"req-{index}"},
                )
                if self.spec.use_transactions:
                    connection.commit()
            else:
                cursor.execute(
                    f"SELECT COUNT(*) FROM {self.spec.table} WHERE client = $client",
                    {"client": self.name},
                )
                cursor.fetchall()
            cursor.close()
        except ReproError as exc:
            self.metrics.record_failure(
                f"{type(exc).__name__}: {exc}",
                latency=time.perf_counter() - started,
                driver=driver_name,
                tag=tag,
            )
            # A failed request usually means a dead connection: reconnect next time.
            self.drop_connection()
            return
        self.metrics.record_success(
            latency=time.perf_counter() - started, driver=driver_name, tag=tag
        )

    # -- background traffic --------------------------------------------------------------

    def start(self, interval: float = 0.005, tag: str = "") -> None:
        """Issue requests continuously on a background thread."""
        if self._thread is not None:
            return
        self._stop_event.clear()

        def loop() -> None:
            index = 0
            while not self._stop_event.wait(interval):
                self._one_request(index, tag)
                index += 1

        self._thread = threading.Thread(target=loop, name=f"app-{self.name}", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def close(self) -> None:
        self.stop()
        self.drop_connection()
