"""Workload generation and metrics.

The paper's case studies argue about operational quantities: how many
steps an upgrade takes, whether applications keep running while drivers
change underneath them, how many requests fail during a failover. This
package provides the client-application simulator and the metrics
collector that turn those arguments into measured numbers.
"""

from repro.workloads.metrics import MetricsCollector, RequestRecord, MetricsSummary, percentile
from repro.workloads.client_app import ClientApplication, WorkloadSpec

__all__ = [
    "MetricsCollector",
    "RequestRecord",
    "MetricsSummary",
    "percentile",
    "ClientApplication",
    "WorkloadSpec",
]
