"""Drivolution reproduction.

This package reproduces the system described in *Drivolution: Rethinking
the Database Driver Lifecycle* (Cecchet & Candea, Middleware 2009) as a
self-contained Python library:

- :mod:`repro.core` — the Drivolution contribution: driver packages stored
  in the database, a DHCP-like bootstrap protocol, a client-side
  bootloader, leases and upgrade policies.
- :mod:`repro.sqlengine` — an in-memory SQL database engine used as the
  substrate that stores drivers in its ``information_schema``.
- :mod:`repro.dbserver` / :mod:`repro.dbapi` — a database wire protocol,
  server and DB-API 2.0 driver stack (the analogue of JDBC drivers).
- :mod:`repro.cluster` — a Sequoia-like replication middleware used by the
  paper's case studies.
- :mod:`repro.netsim` — in-memory and TCP transports, secure channels.
- :mod:`repro.workloads` / :mod:`repro.experiments` — client application
  simulation, metrics, and the experiment harness that regenerates every
  table and case study in the paper.
"""

from repro.errors import (
    ReproError,
    TransportError,
    SqlError,
    DriverError,
    DrivolutionError,
)

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "TransportError",
    "SqlError",
    "DriverError",
    "DrivolutionError",
    "__version__",
]
