"""Top-level exception hierarchy shared by all repro subsystems.

Every subsystem defines more specific exceptions derived from the classes
here so that callers can catch at the granularity they need:

- ``ReproError`` — root of everything raised by this library.
- ``TransportError`` — network/transport failures (:mod:`repro.netsim`).
- ``SqlError`` — SQL engine failures (:mod:`repro.sqlengine`).
- ``DriverError`` — DB-API driver and database server failures.
- ``DrivolutionError`` — failures of the Drivolution protocol, server or
  bootloader (:mod:`repro.core`).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TransportError(ReproError):
    """A network transport operation failed (connect, send, receive)."""


class SqlError(ReproError):
    """A SQL statement could not be parsed or executed."""


class DriverError(ReproError):
    """A database driver or database server operation failed."""


class DrivolutionError(ReproError):
    """A Drivolution protocol, server or bootloader operation failed."""
