"""Unified metrics registry: counters, gauges, streaming histograms.

Every subsystem keeps producing its existing ``stats()`` dict — those
shapes are load-bearing for tests and tools — but registers it here as a
*collector* so one registry can flatten the whole tree into a uniform
snapshot for export (Prometheus text, JSON). On top of the collectors
the registry owns first-class instruments:

- :class:`Counter` — monotone, thread-safe ``inc``.
- :class:`Gauge` — settable point-in-time value.
- :class:`StreamingHistogram` — bounded-memory latency distribution with
  p50/p95/p99 and loss-free ``merge()``.

The histogram uses fixed log-scaled buckets (a simple HDR-style layout):
memory is O(buckets) regardless of observation count, quantiles are
accurate to the bucket width (~7% relative error with the default 48
buckets per decade... actually ``_GROWTH`` below), and two histograms
over the same layout merge by bucket-wise addition — which is what makes
per-thread or per-subsystem recording cheap to combine at snapshot time.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricsRegistry"]


class Counter:
    """Monotone counter. ``inc`` only; exported as ``*_total``."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotone; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; ``set``/``add`` from any thread."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


# Log-scaled bucket layout. Bucket i covers values in
# [_MIN * _GROWTH**i, _MIN * _GROWTH**(i+1)); values below _MIN land in
# bucket 0, values at/above the top range in the overflow bucket. With
# growth 1.15 a bucket's relative width is 15%, which bounds quantile
# error well under typical run-to-run latency noise while keeping the
# whole histogram at ~160 ints for a 1µs..100s span.
_MIN = 1e-6
_GROWTH = 1.15
_LOG_GROWTH = math.log(_GROWTH)
_BUCKETS = int(math.ceil(math.log(100.0 / _MIN) / _LOG_GROWTH)) + 1


class StreamingHistogram:
    """Bounded-memory distribution of non-negative observations
    (seconds). Quantiles interpolate within the winning bucket; two
    histograms merge loss-free by bucket-wise addition."""

    __slots__ = ("name", "help", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str = "", help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._counts = [0] * (_BUCKETS + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @staticmethod
    def _bucket_index(value: float) -> int:
        if value < _MIN:
            return 0
        index = int(math.log(value / _MIN) / _LOG_GROWTH) + 1
        return min(index, _BUCKETS)

    @staticmethod
    def _bucket_upper(index: int) -> float:
        if index >= _BUCKETS:
            return math.inf
        return _MIN * (_GROWTH ** index)

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram (loss-free: layouts are
        identical by construction)."""
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            other_min, other_max = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if other_min is not None and (self._min is None or other_min < self._min):
                self._min = other_min
            if other_max is not None and (self._max is None or other_max > self._max):
                self._max = other_max

    def quantile(self, q: float) -> float:
        """Approximate quantile (0..1); 0.0 on an empty histogram."""
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= target and bucket_count:
                    upper = self._bucket_upper(index)
                    if math.isinf(upper):
                        return self._max if self._max is not None else 0.0
                    lower = 0.0 if index == 0 else self._bucket_upper(index - 1)
                    # Linear interpolation within the bucket.
                    into = (target - (seen - bucket_count)) / bucket_count
                    value = lower + (upper - lower) * max(0.0, min(1.0, into))
                    # Clamp to the observed extremes so tiny samples
                    # don't report values never seen.
                    if self._max is not None:
                        value = min(value, self._max)
                    if self._min is not None:
                        value = max(value, self._min)
                    return value
            return self._max if self._max is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(low, 6) if low is not None else None,
            "max": round(high, 6) if high is not None else None,
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }


class MetricsRegistry:
    """One namespace for everything a controller (or driver) measures.

    Two populations live here:

    - **instruments** (:class:`Counter` / :class:`Gauge` /
      :class:`StreamingHistogram`) created via the ``counter`` /
      ``gauge`` / ``histogram`` factories — get-or-create by name, so
      subsystems can grab the same instrument without plumbing;
    - **collectors** — named callables returning the subsystem's
      existing ``stats()`` dict, folded into the snapshot under their
      name so ``Controller.stats()`` keeps its historical shape while
      the registry's :meth:`snapshot` sees the same numbers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- instrument factories (get-or-create) ------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, help_text)
            return instrument

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, help_text)
            return instrument

    def histogram(self, name: str, help_text: str = "") -> StreamingHistogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = StreamingHistogram(name, help_text)
            return instrument

    # -- collectors --------------------------------------------------------------

    def register_collector(self, name: str, producer: Callable[[], Dict[str, Any]]) -> None:
        with self._lock:
            self._collectors[name] = producer

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- snapshot ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view: collector trees plus instrument values.

        Each collector runs outside the registry lock (collectors take
        their own subsystem locks; holding ours too would order-invert
        against concurrent ``counter()`` calls from those subsystems).
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            collectors = list(self._collectors.items())
        snap: Dict[str, Any] = {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
            "subsystems": {},
        }
        for name, producer in collectors:
            try:
                snap["subsystems"][name] = producer()
            except Exception as exc:  # a failing subsystem must not kill export
                snap["subsystems"][name] = {"error": type(exc).__name__}
        return snap

    def flattened(self) -> List[Tuple[str, float]]:
        """The snapshot as flat ``(metric_path, numeric_value)`` samples
        — the input shape for the Prometheus renderer. Non-numeric
        leaves are dropped; histogram snapshots expand per-field."""
        samples: List[Tuple[str, float]] = []
        snap = self.snapshot()
        for name, value in sorted(snap["counters"].items()):
            samples.append((f"{name}_total", float(value)))
        for name, value in sorted(snap["gauges"].items()):
            samples.append((name, float(value)))
        for name, hist in sorted(snap["histograms"].items()):
            for field in ("count", "sum", "p50", "p95", "p99"):
                value = hist.get(field)
                if value is not None:
                    samples.append((f"{name}_{field}", float(value)))
        _flatten_tree(snap["subsystems"], "", samples)
        return samples


def _flatten_tree(tree: Dict[str, Any], prefix: str, out: List[Tuple[str, float]]) -> None:
    for key in sorted(tree):
        value = tree[key]
        path = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, dict):
            _flatten_tree(value, path, out)
        elif isinstance(value, bool):
            out.append((path, 1.0 if value else 0.0))
        elif isinstance(value, (int, float)):
            out.append((path, float(value)))
        # strings / lists / None: not numeric samples — skipped.
