"""Per-statement tracing: where did this statement's time go?

The controller is the one vantage point that sees a statement end to
end — queue wait on the multiplexed FIFO, classification, cache lookup,
lock wait, per-replica backend execution, batch-rider wait, log append,
group-commit fsync wait. A :class:`Trace` collects those stages as
:class:`Span` records against one monotonic clock so they can be summed,
compared against the driver-observed latency, exported over the wire
(``Trace.to_wire``) and fed to the slow-query log.

Design constraints, in order:

1. **Zero cost when off.** Nothing in this module is imported on the hot
   path unless ``ControllerConfig.tracing`` is set; every producer guards
   with ``if trace is not None``. With tracing off the statement path
   allocates no trace objects at all (asserted by tests).
2. **Thread-safe appends.** Spans are recorded from the mux reader
   thread, the worker pool, the broadcaster pool and the write-batch
   leader; ``Trace`` serialises appends under one lock.
3. **Flat storage, tree views.** Spans carry a ``parent`` *name* rather
   than object references, so a trace serialises to a flat list of
   compact records and :meth:`Trace.tree` rebuilds the hierarchy for
   display.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Trace"]


def _wire_str(value: str) -> str:
    """JSON-quote a string, skipping the escape machinery for the
    identifier-ish names/keys the span producers emit (the common case);
    anything needing escapes falls back to :func:`json.dumps`."""
    if '"' in value or "\\" in value or not value.isprintable():
        return json.dumps(value)
    return f'"{value}"'


#: Quoted-form memo for span names, parents and attr keys — a small
#: fixed vocabulary (stage names, ``replica:<backend>``) hit on every
#: traced statement. Attr *values* are not memoised: some (trace ids)
#: are unbounded. The size cap makes a pathological producer degrade to
#: uncached quoting rather than grow the memo forever.
_QUOTED_CACHE: Dict[str, str] = {}


def _quoted_name(value: str) -> str:
    cached = _QUOTED_CACHE.get(value)
    if cached is None:
        cached = _wire_str(value)
        if len(_QUOTED_CACHE) < 4096:
            _QUOTED_CACHE[value] = cached
    return cached


def _attrs_json(attrs: Dict[str, Any]) -> str:
    """Hand-serialised attrs dict (bools/numbers/strings dominate;
    anything else goes through ``json.dumps`` with ``str`` fallback)."""
    items = []
    for key, value in attrs.items():
        if value is True:
            encoded = "true"
        elif value is False:
            encoded = "false"
        elif isinstance(value, str):
            encoded = _wire_str(value)
        elif isinstance(value, (int, float)):
            encoded = repr(value)
        elif value is None:
            encoded = "null"
        else:
            encoded = json.dumps(value, separators=(",", ":"), default=str)
        items.append(f"{_quoted_name(key)}:{encoded}")
    return "{" + ",".join(items) + "}"


class Span:
    """One timed stage of a traced statement.

    ``start``/``end`` are offsets in seconds from the owning trace's
    epoch (so wire serialisation is origin-independent); ``attrs`` carry
    stage detail such as the lock scope kind or the executing backend.
    """

    __slots__ = ("name", "parent", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_wire(self) -> List[Any]:
        """Compact record ``[name, start_ms, duration_ms, parent?, attrs?]``
        with trailing defaults omitted. Spans ride every traced RESULT
        frame, so the wire shape avoids repeating dict keys per span —
        serialisation cost is part of the tracing-overhead budget gated
        by ``benchmarks/test_bench_overhead.py``."""
        record: List[Any] = [
            self.name,
            round(self.start * 1000.0, 3),
            round(self.duration * 1000.0, 3),
        ]
        if self.parent is not None or self.attrs:
            record.append(self.parent)
        if self.attrs:
            record.append(self.attrs)
        return record

    @classmethod
    def from_wire(cls, message: Any) -> "Span":
        if isinstance(message, dict):
            # Legacy verbose shape, kept for forward compatibility with
            # hand-built span payloads in tooling and tests.
            start = float(message.get("start_ms", 0.0)) / 1000.0
            duration = float(message.get("duration_ms", 0.0)) / 1000.0
            return cls(
                str(message.get("name", "?")),
                start,
                start + duration,
                parent=message.get("parent"),
                attrs=dict(message.get("attrs") or {}),
            )
        name = str(message[0]) if message else "?"
        start = float(message[1]) / 1000.0 if len(message) > 1 else 0.0
        duration = float(message[2]) / 1000.0 if len(message) > 2 else 0.0
        parent = message[3] if len(message) > 3 else None
        attrs = dict(message[4]) if len(message) > 4 else {}
        return cls(name, start, start + duration, parent=parent, attrs=attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, parent={self.parent!r})"


class _OpenSpan:
    __slots__ = ("name", "parent", "started", "attrs")

    def __init__(self, name: str, parent: Optional[str], started: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.parent = parent
        self.started = started
        self.attrs = attrs


class Trace:
    """The span collection of one statement.

    The trace's epoch is its construction time (monotonic). The root
    span ``server`` covers construction to :meth:`finish`; every other
    span defaults to being its child. Producers either use the
    :meth:`span` context manager (same-thread stages) or the explicit
    :meth:`begin`/:meth:`end` pair (stages that start on one thread and
    finish on another, like the mux queue wait), or :meth:`record` with
    raw monotonic timestamps (stages timed by someone else, like the
    broadcaster's per-replica workers).
    """

    ROOT = "server"

    def __init__(
        self,
        trace_id: Optional[str] = None,
        clock=time.monotonic,
        wire_requested: bool = False,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex
        #: Whether the client asked for the spans back on its reply frame
        #: (it sent a ``trace_id``); server-only traces keep the reply
        #: byte-identical to the untraced one.
        self.wire_requested = wire_requested
        self._clock = clock
        self._epoch = clock()
        self._finished: Optional[float] = None
        self._lock = threading.Lock()
        #: Closed spans as raw ``(name, start, end, parent, attrs|None)``
        #: tuples — producers run once per stage per statement, so they
        #: append a tuple instead of constructing a :class:`Span`; the
        #: view methods materialise Span objects on demand.
        self._spans: List[tuple] = []
        self._open: Dict[str, _OpenSpan] = {}
        self.attrs: Dict[str, Any] = {}

    # -- clock -------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    @property
    def total(self) -> float:
        """Root duration: construction to finish (or to now while open)."""
        if self._finished is not None:
            return self._finished
        return self._now()

    # -- span production ---------------------------------------------------------

    def begin(self, name: str, parent: Optional[str] = None, **attrs: Any) -> None:
        """Open a span; finish it later (possibly from another thread)
        with :meth:`end`. Re-opening an already-open name restarts it."""
        started = self._now()
        with self._lock:
            self._open[name] = _OpenSpan(name, parent, started, attrs)

    def end(self, name: str, **attrs: Any) -> None:
        """Close a span opened with :meth:`begin`; unknown names no-op so
        producers need no bookkeeping about whether tracing was on when
        the stage started."""
        ended = self._now()
        with self._lock:
            open_span = self._open.pop(name, None)
            if open_span is None:
                return
            if open_span.attrs:
                # The open record is discarded here, so its attrs dict can
                # be reused as the merge target instead of copied.
                open_span.attrs.update(attrs)
                attrs = open_span.attrs
            self._spans.append(
                (name, open_span.started, ended, open_span.parent, attrs or None)
            )

    def span(self, name: str, parent: Optional[str] = None, **attrs: Any):
        """Context manager for a same-thread stage."""
        return _SpanContext(self, name, parent, attrs)

    def record(
        self,
        name: str,
        started: float,
        ended: float,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Record a span from raw ``time.monotonic()`` readings taken by
        the producer (e.g. a broadcaster worker thread)."""
        with self._lock:
            self._spans.append(
                (name, started - self._epoch, ended - self._epoch, parent, attrs or None)
            )

    def annotate(self, **attrs: Any) -> None:
        """Attach trace-level attributes (statement command, session...)."""
        with self._lock:
            self.attrs.update(attrs)

    def finish(self) -> float:
        """Seal the trace; returns its total duration. Idempotent."""
        with self._lock:
            if self._finished is None:
                self._finished = self._now()
                # Abandoned open spans (a producer that raised mid-stage)
                # close at finish time so the trace still accounts them.
                for open_span in self._open.values():
                    self._spans.append(
                        (
                            open_span.name,
                            open_span.started,
                            self._finished,
                            open_span.parent,
                            dict(open_span.attrs, unfinished=True),
                        )
                    )
                self._open.clear()
            return self._finished

    # -- views -------------------------------------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            records = list(self._spans)
        return [
            Span(name, start, end, parent=parent, attrs=attrs)
            for name, start, end, parent, attrs in records
        ]

    def span_names(self) -> List[str]:
        return [span.name for span in self.spans()]

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def stage_seconds(self) -> Dict[str, float]:
        """Total seconds per top-level stage (spans with no parent),
        summing repeats (e.g. a retried lock acquisition)."""
        stages: Dict[str, float] = {}
        with self._lock:
            records = list(self._spans)
        for name, start, end, parent, _attrs in records:
            if parent is None:
                stages[name] = stages.get(name, 0.0) + max(0.0, end - start)
        return stages

    def tree(self) -> List[Dict[str, Any]]:
        """The span forest: top-level stages with nested ``children``."""
        spans = self.spans()
        nodes = []
        by_name: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            node = {
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "attrs": dict(span.attrs),
                "children": [],
            }
            by_name.setdefault(span.name, node)
            nodes.append((span, node))
        roots: List[Dict[str, Any]] = []
        for span, node in nodes:
            parent = by_name.get(span.parent) if span.parent else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    # -- wire --------------------------------------------------------------------

    def to_wire(self) -> List[List[Any]]:
        return [span.to_wire() for span in self.spans()]

    def to_wire_json(self) -> str:
        """The span list pre-serialised to one JSON string.

        Riding the RESULT frame as a single string keeps the frame
        codec's per-value recursion off the traced hot path: the codec
        escapes one flat string instead of walking every span's nested
        attrs, and the driver defers parsing to
        :meth:`spans_from_wire` — i.e. until someone actually looks at
        the trace, which is never inside the statement latency loop.

        Built by hand rather than via ``json.dumps(self.to_wire())``:
        span names and parents are identifier-ish strings and the
        timings are plain floats, so direct formatting skips the
        generic encoder's per-element dispatch (~3x faster on a
        typical 8-span trace — this runs once per traced statement
        and is part of the gated overhead budget)."""
        with self._lock:
            records = list(self._spans)
        parts: List[str] = []
        for name, start, end, parent, attrs in records:
            duration = end - start
            if duration < 0.0:
                duration = 0.0
            head = (
                f"[{_quoted_name(name)},"
                f"{start * 1000.0:.3f},{duration * 1000.0:.3f}"
            )
            if attrs:
                parts.append(
                    f"{head},"
                    f"{'null' if parent is None else _quoted_name(parent)},"
                    f"{_attrs_json(attrs)}]"
                )
            elif parent is not None:
                parts.append(f"{head},{_quoted_name(parent)}]")
            else:
                parts.append(head + "]")
        return f"[{','.join(parts)}]"

    @staticmethod
    def spans_from_wire(messages: Any) -> List[Span]:
        """Spans from a reply frame's ``trace`` value: a pre-serialised
        JSON string (the controller's shape), or an already-parsed list
        of compact records / legacy dicts."""
        if isinstance(messages, str):
            messages = json.loads(messages) if messages else []
        return [Span.from_wire(message) for message in messages or []]


class _SpanContext:
    __slots__ = ("_trace", "_name", "_parent", "_attrs", "_started")

    def __init__(self, trace: Trace, name: str, parent: Optional[str], attrs: Dict[str, Any]) -> None:
        self._trace = trace
        self._name = name
        self._parent = parent
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self._started = self._trace._now()
        return self

    def set(self, **attrs: Any) -> None:
        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        ended = self._trace._now()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        with self._trace._lock:
            self._trace._spans.append(
                (self._name, self._started, ended, self._parent, self._attrs or None)
            )
