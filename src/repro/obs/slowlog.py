"""Slow-query capture: the N slowest statements with stage breakdowns.

A bounded min-heap keyed on total latency keeps the slowest ``capacity``
statements seen since startup (not a sliding window — the interesting
tail outliers are exactly the ones a window would age out). SQL is
redacted before storage: every literal is replaced with ``?`` so captured
statements never leak row values into metrics endpoints or logs.
"""

from __future__ import annotations

import heapq
import itertools
import re
import threading
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog", "redact_sql"]

# String literals first (so numbers inside strings don't double-match),
# then standalone numeric literals.
_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
_NUMBER_LITERAL = re.compile(r"\b\d+(?:\.\d+)?\b")


def redact_sql(sql: str) -> str:
    """Replace string and numeric literals with ``?`` placeholders.

    ``INSERT INTO users VALUES (42, 'alice')`` becomes
    ``INSERT INTO users VALUES (?, ?)`` — structure preserved, values
    gone.
    """
    redacted = _STRING_LITERAL.sub("?", sql)
    return _NUMBER_LITERAL.sub("?", redacted)


class SlowQueryLog:
    """Bounded store of the slowest statements.

    ``record`` is O(log capacity) and only takes the lock when the
    statement clears the threshold, so with a sensible
    ``threshold_ms`` the fast path is one float compare.
    """

    def __init__(self, capacity: int = 32, threshold_ms: float = 0.0) -> None:
        self.capacity = max(1, int(capacity))
        self.threshold_s = max(0.0, float(threshold_ms)) / 1000.0
        self._lock = threading.Lock()
        # Heap of (duration, tiebreak, entry); smallest duration on top
        # so eviction drops the least-slow entry.
        self._heap: List[Any] = []
        self._tiebreak = itertools.count()
        self._recorded = 0

    def record(
        self,
        sql: str,
        duration_s: float,
        stages: Any = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> bool:
        """Consider a finished statement; returns True if captured.

        ``stages`` may be the stage dict itself or a zero-arg callable
        producing it (e.g. ``trace.stage_seconds``): redaction, stage
        summing and entry construction only happen for statements that
        actually make the table, so in steady state — heap full,
        statement no slower than the current floor — the cost is a
        compare and a counter bump."""
        if duration_s < self.threshold_s:
            return False
        with self._lock:
            self._recorded += 1
            full = len(self._heap) >= self.capacity
            if full and duration_s <= self._heap[0][0]:
                return False
            if callable(stages):
                stages = stages()
            entry = {
                "sql": redact_sql(sql),
                "duration_ms": round(duration_s * 1000.0, 3),
                "stages_ms": {
                    name: round(seconds * 1000.0, 3)
                    for name, seconds in sorted((stages or {}).items())
                },
                "trace_id": trace_id,
            }
            if attrs:
                entry["attrs"] = dict(attrs)
            item = (duration_s, next(self._tiebreak), entry)
            if full:
                heapq.heapreplace(self._heap, item)
            else:
                heapq.heappush(self._heap, item)
            return True

    def entries(self) -> List[Dict[str, Any]]:
        """Captured statements, slowest first."""
        with self._lock:
            ranked = sorted(self._heap, key=lambda item: item[0], reverse=True)
            return [dict(entry) for _, _, entry in ranked]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threshold_ms": round(self.threshold_s * 1000.0, 3),
                "captured": len(self._heap),
                "recorded": self._recorded,
            }

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
