"""Observability: per-statement tracing, unified metrics, slow-query
capture, and exporters.

See ``docs/observability.md`` for the span taxonomy and the knobs
(``ControllerConfig.tracing``, ``slow_query_threshold_ms``,
``slow_query_capacity``) that turn this machinery on.
"""

from repro.obs.export import (
    parse_prometheus_text,
    render_json,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.slowlog import SlowQueryLog, redact_sql
from repro.obs.trace import Span, Trace

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "StreamingHistogram",
    "Trace",
    "parse_prometheus_text",
    "redact_sql",
    "render_json",
    "render_prometheus",
    "sanitize_metric_name",
]
