"""Exporters: Prometheus text exposition and JSON snapshots.

``render_prometheus`` turns the registry's flat samples into the
Prometheus text exposition format (version 0.0.4 — ``# TYPE`` lines plus
``name value`` samples). ``parse_prometheus_text`` is the strict inverse
used by the CI smoke: if the renderer ever emits something a scraper
would reject, the round-trip test fails rather than a production scrape.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "parse_prometheus_text",
    "render_json",
]

_VALID_METRIC = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+|[Nn]a[Nn]|[-+]?[Ii]nf))$"
)


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary metric path into a legal Prometheus name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not _VALID_METRIC.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def render_prometheus(
    samples: List[Tuple[str, float]], prefix: str = "repro"
) -> str:
    """Render flat ``(path, value)`` samples as Prometheus text.

    Counter-style samples (``*_total``) get ``# TYPE ... counter``;
    everything else is a gauge. Duplicate paths keep the last value —
    exposition forbids repeated series.
    """
    deduped: Dict[str, float] = {}
    for path, value in samples:
        name = sanitize_metric_name(f"{prefix}_{path}" if prefix else path)
        deduped[name] = value
    lines: List[str] = []
    for name in sorted(deduped):
        value = deduped[name]
        kind = "counter" if name.endswith("_total") else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        if value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = repr(float(value))
        lines.append(f"{name} {rendered}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Strictly parse Prometheus exposition text; raises ``ValueError``
    on any malformed line. Returns ``{metric_name: value}``."""
    metrics: Dict[str, float] = {}
    typed: Dict[str, str] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if parts[1] == "TYPE":
                    if len(parts) < 4:
                        raise ValueError(f"line {line_number}: malformed TYPE: {raw!r}")
                    name, kind = parts[2], parts[3]
                    if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        raise ValueError(f"line {line_number}: unknown type {kind!r}")
                    if name in typed:
                        raise ValueError(f"line {line_number}: duplicate TYPE for {name}")
                    typed[name] = kind
                continue  # other comments are legal and ignored
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample: {raw!r}")
        name = match.group("name")
        if name in metrics:
            raise ValueError(f"line {line_number}: duplicate sample for {name}")
        metrics[name] = float(match.group("value"))
    return metrics


def render_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """JSON export of a registry snapshot (stable key order)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)
