"""Simulated secure channel: certificates, handshake and tamper detection.

The paper (Section 3.1) states that driver transfer should use "encrypted
authenticated SSL channels": the bootloader verifies the Drivolution
server's certificate so a man-in-the-middle cannot substitute a malicious
driver, and the transfer itself cannot be tampered with.

Real TLS is unnecessary for reproducing that behaviour; what matters is
that the code paths exist and are exercised: certificate issuance and
verification against a trusted authority, rejection of unknown or forged
certificates, and detection of payload tampering in transit. This module
implements those semantics with HMAC-based message authentication over an
existing :class:`~repro.netsim.transport.Channel`.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import TransportError
from repro.netsim.transport import Channel


class SecureChannelError(TransportError):
    """Handshake failure, unknown certificate, or tampered payload."""


@dataclass(frozen=True)
class Certificate:
    """A certificate binding a subject name to a public identity.

    ``fingerprint`` is derived from the subject and the issuing
    authority's secret, so a certificate cannot be forged without the
    authority's key.
    """

    subject: str
    issuer: str
    fingerprint: str

    def to_wire(self) -> Dict[str, str]:
        return {"subject": self.subject, "issuer": self.issuer, "fingerprint": self.fingerprint}

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "Certificate":
        try:
            return Certificate(
                subject=str(data["subject"]),
                issuer=str(data["issuer"]),
                fingerprint=str(data["fingerprint"]),
            )
        except KeyError as exc:
            raise SecureChannelError(f"malformed certificate: missing {exc}") from exc


class CertificateAuthority:
    """Issues and verifies certificates for servers and clients."""

    def __init__(self, name: str = "repro-ca", secret: Optional[bytes] = None) -> None:
        self.name = name
        self._secret = secret if secret is not None else os.urandom(32)

    def issue(self, subject: str) -> Certificate:
        """Issue a certificate for ``subject``."""
        fingerprint = hmac.new(
            self._secret, f"{self.name}:{subject}".encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return Certificate(subject=subject, issuer=self.name, fingerprint=fingerprint)

    def verify(self, certificate: Certificate) -> bool:
        """Check that ``certificate`` was issued by this authority."""
        if certificate.issuer != self.name:
            return False
        expected = self.issue(certificate.subject)
        return hmac.compare_digest(expected.fingerprint, certificate.fingerprint)


class SecureChannel(Channel):
    """Wraps a plain channel with certificate handshake and payload MACs.

    Both peers must share the session key established during the
    handshake; every message carries an HMAC over its canonical encoding.
    A tampering adversary (simulated in tests by rewriting messages on the
    underlying channel) causes :class:`SecureChannelError` on receive.
    """

    def __init__(self, inner: Channel, session_key: bytes, peer_certificate: Certificate) -> None:
        self._inner = inner
        self._session_key = session_key
        self.peer_certificate = peer_certificate

    # -- handshake ---------------------------------------------------------

    @staticmethod
    def client_handshake(
        inner: Channel,
        authority: CertificateAuthority,
        client_certificate: Optional[Certificate] = None,
        expected_subject: Optional[str] = None,
        timeout: Optional[float] = 5.0,
    ) -> "SecureChannel":
        """Initiate a handshake and verify the server's certificate."""
        client_nonce = os.urandom(16)
        hello: Dict[str, Any] = {"type": "secure_hello", "nonce": client_nonce}
        if client_certificate is not None:
            hello["certificate"] = client_certificate.to_wire()
        inner.send(hello)
        reply = inner.recv(timeout=timeout)
        if reply.get("type") != "secure_hello_ack":
            raise SecureChannelError(f"unexpected handshake reply: {reply.get('type')!r}")
        server_cert = Certificate.from_wire(reply.get("certificate", {}))
        if not authority.verify(server_cert):
            raise SecureChannelError(
                f"server certificate for {server_cert.subject!r} not trusted by {authority.name!r}"
            )
        if expected_subject is not None and server_cert.subject != expected_subject:
            raise SecureChannelError(
                f"server certificate subject {server_cert.subject!r} does not match "
                f"expected {expected_subject!r}"
            )
        server_nonce = reply.get("nonce", b"")
        session_key = _derive_key(client_nonce, server_nonce, server_cert.fingerprint)
        return SecureChannel(inner, session_key, server_cert)

    @staticmethod
    def server_handshake(
        inner: Channel,
        certificate: Certificate,
        authority: Optional[CertificateAuthority] = None,
        require_client_certificate: bool = False,
        timeout: Optional[float] = 5.0,
    ) -> "SecureChannel":
        """Answer a client handshake, presenting ``certificate``."""
        hello = inner.recv(timeout=timeout)
        if hello.get("type") != "secure_hello":
            raise SecureChannelError(f"unexpected handshake message: {hello.get('type')!r}")
        client_cert: Optional[Certificate] = None
        if "certificate" in hello:
            client_cert = Certificate.from_wire(hello["certificate"])
            if authority is not None and not authority.verify(client_cert):
                raise SecureChannelError(f"client certificate {client_cert.subject!r} not trusted")
        elif require_client_certificate:
            raise SecureChannelError("client certificate required but not presented")
        server_nonce = os.urandom(16)
        inner.send(
            {
                "type": "secure_hello_ack",
                "nonce": server_nonce,
                "certificate": certificate.to_wire(),
            }
        )
        client_nonce = hello.get("nonce", b"")
        session_key = _derive_key(client_nonce, server_nonce, certificate.fingerprint)
        peer = client_cert if client_cert is not None else Certificate("anonymous", "none", "")
        return SecureChannel(inner, session_key, peer)

    # -- channel interface ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def send(self, message: Dict[str, Any]) -> None:
        from repro.netsim.framing import encode_message

        body = encode_message(message)
        mac = hmac.new(self._session_key, body, hashlib.sha256).hexdigest()
        self._inner.send({"type": "secure_data", "body": body, "mac": mac})

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        from repro.netsim.framing import decode_message

        envelope = self._inner.recv(timeout=timeout)
        if envelope.get("type") != "secure_data":
            raise SecureChannelError(f"unexpected secure frame type: {envelope.get('type')!r}")
        body = envelope.get("body", b"")
        mac = envelope.get("mac", "")
        expected = hmac.new(self._session_key, body, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, mac):
            raise SecureChannelError("message authentication failed (payload tampered in transit)")
        return decode_message(body)

    def close(self) -> None:
        self._inner.close()


def _derive_key(client_nonce: bytes, server_nonce: bytes, fingerprint: str) -> bytes:
    if not isinstance(client_nonce, bytes):
        client_nonce = bytes(str(client_nonce), "utf-8")
    if not isinstance(server_nonce, bytes):
        server_nonce = bytes(str(server_nonce), "utf-8")
    return hashlib.sha256(client_nonce + server_nonce + fingerprint.encode("utf-8")).digest()


def secure_wrap(
    channel: Channel,
    role: str,
    authority: CertificateAuthority,
    certificate: Optional[Certificate] = None,
    expected_subject: Optional[str] = None,
) -> SecureChannel:
    """Wrap ``channel`` as client or server in one call.

    ``role`` is ``"client"`` or ``"server"``. Servers must pass their
    ``certificate``; clients may pass ``expected_subject`` to pin the
    server identity.
    """
    if role == "client":
        return SecureChannel.client_handshake(
            channel, authority, expected_subject=expected_subject
        )
    if role == "server":
        if certificate is None:
            raise SecureChannelError("server role requires a certificate")
        return SecureChannel.server_handshake(channel, certificate, authority=authority)
    raise ValueError(f"role must be 'client' or 'server', got {role!r}")
