"""Abstract transport interfaces.

A :class:`Network` creates :class:`Listener` objects (server side) and
:class:`Channel` objects (client side). Channels are bidirectional,
message-oriented and blocking; servers typically wrap a listener in a
:class:`ChannelServer` which accepts connections on a background thread
and dispatches each one to a handler callable.

The same interfaces are implemented by the in-memory network
(:mod:`repro.netsim.inmem`) and the TCP network (:mod:`repro.netsim.tcp`),
so every server and client in the repro is transport agnostic.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TransportError

#: Addresses are plain strings, e.g. ``"db1:5432"`` for the in-memory
#: network or ``"127.0.0.1:15432"`` for TCP.
Address = str


class Channel(ABC):
    """A bidirectional, message-oriented connection between two peers."""

    @abstractmethod
    def send(self, message: Dict[str, Any]) -> None:
        """Send one message dictionary to the peer."""

    @abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Receive one message, blocking up to ``timeout`` seconds.

        Raises :class:`repro.errors.TransportError` on timeout or if the
        peer has closed the channel.
        """

    @abstractmethod
    def close(self) -> None:
        """Close the channel; pending receivers on both sides are woken."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """Whether the channel has been closed by either side."""

    def request(self, message: Dict[str, Any], timeout: Optional[float] = None) -> Dict[str, Any]:
        """Convenience helper: send ``message`` and wait for one reply."""
        self.send(message)
        return self.recv(timeout=timeout)

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Listener(ABC):
    """Server-side endpoint accepting incoming channels."""

    @property
    @abstractmethod
    def address(self) -> Address:
        """The address clients use to connect to this listener."""

    @abstractmethod
    def accept(self, timeout: Optional[float] = None) -> Channel:
        """Accept one incoming channel, blocking up to ``timeout``."""

    @abstractmethod
    def close(self) -> None:
        """Stop accepting connections and release the address."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """Whether the listener has been closed."""


class Network(ABC):
    """Factory for listeners and outbound channels."""

    @abstractmethod
    def listen(self, address: Address) -> Listener:
        """Bind a listener to ``address``."""

    @abstractmethod
    def connect(self, address: Address, timeout: Optional[float] = None) -> Channel:
        """Open a channel to the listener bound at ``address``."""

    def registered_addresses(self) -> List[Address]:
        """Addresses currently listening on this network.

        Used by broadcast-style discovery (``DRIVOLUTION_DISCOVER``).
        Networks that cannot enumerate peers (real TCP) return an empty
        list, and discovery falls back to an explicit server list.
        """
        return []


class ChannelServer:
    """Accept loop that dispatches each incoming channel to a handler.

    By default the handler is called as ``handler(channel)`` on a
    dedicated thread per connection; it owns the channel and must close
    it when done. This is the building block used by the database
    server, the Sequoia controller and the Drivolution server.

    ``workers`` caps the handler concurrency with a fixed thread pool
    instead: at most ``workers`` handlers run at once and further
    accepted channels queue until a worker frees up. Only suitable for
    front ends whose handlers are short-lived or few (the controller's
    multiplexed front end keeps one long-lived reader per *physical*
    channel, so a small pool serves thousands of logical sessions);
    long-lived per-client handlers (the v2 dedicated-session path) keep
    the thread-per-connection default or idle clients starve the pool.
    """

    def __init__(
        self,
        listener: Listener,
        handler: Callable[[Channel], None],
        name: str = "server",
        workers: Optional[int] = None,
    ):
        self._listener = listener
        self._handler = handler
        self._name = name
        self._workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        # Accepted channels still owned by a live handler: stop() closes
        # them so clients blocked on an in-flight reply observe the
        # server's death (a real TCP server's sockets die with it) instead
        # of hanging until their own receive timeout.
        self._open_channels: Dict[int, Channel] = {}
        self._open_lock = threading.Lock()

    @property
    def address(self) -> Address:
        return self._listener.address

    @property
    def running(self) -> bool:
        return self._accept_thread is not None and not self._stopped.is_set()

    def start(self) -> "ChannelServer":
        """Start accepting connections on a background thread."""
        if self._accept_thread is not None:
            raise TransportError(f"{self._name} already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self._name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                channel = self._listener.accept(timeout=0.1)
            except TransportError:
                if self._listener.closed:
                    return
                continue
            if self._workers is not None:
                executor = self._get_executor()
                try:
                    if executor is None:
                        raise RuntimeError("server stopped")
                    executor.submit(self._run_handler, channel)
                except RuntimeError:
                    # stop() shut the pool down between accept and submit.
                    channel.close()
                    return
                continue
            # Reap finished handler threads before tracking a new one: a
            # long-lived listener used to append every per-connection
            # thread here without ever removing it, so the list (and the
            # dead Thread objects it pinned) grew without bound.
            self._threads = [thread for thread in self._threads if thread.is_alive()]
            thread = threading.Thread(
                target=self._run_handler, args=(channel,), name=f"{self._name}-conn", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def _get_executor(self) -> Optional[ThreadPoolExecutor]:
        if self._stopped.is_set():
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix=f"{self._name}-worker"
            )
        return self._executor

    def handler_thread_count(self) -> int:
        """Live handler threads (observability for leak tests and the
        session-scaling bench)."""
        if self._workers is not None:
            executor = self._executor
            return len(getattr(executor, "_threads", ()) or ()) if executor else 0
        return sum(1 for thread in self._threads if thread.is_alive())

    def _run_handler(self, channel: Channel) -> None:
        with self._open_lock:
            self._open_channels[id(channel)] = channel
        try:
            self._handler(channel)
        except TransportError:
            pass
        finally:
            with self._open_lock:
                self._open_channels.pop(id(channel), None)
            try:
                channel.close()
            except Exception:  # pragma: no cover - defensive
                pass

    def stop(self) -> None:
        """Stop accepting new connections and close the accepted channels
        (waking any client blocked on a reply with end-of-stream, like a
        dying process's sockets would). Existing handlers keep running
        until their next channel operation observes the close."""
        self._stopped.set()
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        with self._open_lock:
            channels = list(self._open_channels.values())
            self._open_channels.clear()
        for channel in channels:
            try:
                channel.close()
            except Exception:  # pragma: no cover - defensive
                pass
        if self._executor is not None:
            # Queued-but-unstarted handlers are abandoned; running ones
            # finish on their own (mirrors the per-thread mode, where
            # stop() never joins handler threads).
            self._executor.shutdown(wait=False)
            self._executor = None
