"""Deterministic in-memory network.

This is the default substrate for tests and experiments. It provides:

- named endpoints (``"db1:5432"``-style addresses),
- blocking, message-oriented channels backed by queues,
- enumeration of listening addresses (used by ``DRIVOLUTION_DISCOVER``
  broadcast),
- fault injection: kill an endpoint, partition two endpoints, add fixed
  latency, or drop a fraction of messages (deterministically, via a
  counter rather than a random source, so tests stay reproducible).

Messages are round-tripped through the framing codec on every send so the
in-memory network exercises exactly the same serialization constraints as
the TCP network.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import TransportError
from repro.netsim.framing import decode_message, encode_message
from repro.netsim.transport import Address, Channel, Listener, Network


class _Faults:
    """Shared fault-injection state for one :class:`InMemoryNetwork`."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.dead_endpoints: Set[Address] = set()
        self.partitions: Set[Tuple[Address, Address]] = set()
        self.latency_seconds: float = 0.0
        self.drop_every_nth: int = 0
        self._send_counter = 0

    def is_partitioned(self, a: Address, b: Address) -> bool:
        with self.lock:
            return (a, b) in self.partitions or (b, a) in self.partitions

    def is_dead(self, address: Address) -> bool:
        with self.lock:
            return address in self.dead_endpoints

    def should_drop(self) -> bool:
        with self.lock:
            if self.drop_every_nth <= 0:
                return False
            self._send_counter += 1
            return self._send_counter % self.drop_every_nth == 0


class InMemoryChannel(Channel):
    """One side of an in-memory connection."""

    def __init__(
        self,
        local: Address,
        remote: Address,
        inbox: "queue.Queue[Optional[bytes]]",
        outbox: "queue.Queue[Optional[bytes]]",
        faults: _Faults,
    ) -> None:
        self._local = local
        self._remote = remote
        self._inbox = inbox
        self._outbox = outbox
        self._faults = faults
        self._closed = threading.Event()

    @property
    def local_address(self) -> Address:
        return self._local

    @property
    def remote_address(self) -> Address:
        return self._remote

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def send(self, message: Dict[str, Any]) -> None:
        if self._closed.is_set():
            raise TransportError(f"channel {self._local}->{self._remote} is closed")
        if self._faults.is_dead(self._remote) or self._faults.is_dead(self._local):
            raise TransportError(f"endpoint unreachable: {self._remote}")
        if self._faults.is_partitioned(self._local, self._remote):
            raise TransportError(f"network partition between {self._local} and {self._remote}")
        data = encode_message(message)
        if self._faults.should_drop():
            return
        if self._faults.latency_seconds > 0:
            time.sleep(self._faults.latency_seconds)
        self._outbox.put(data)

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._closed.is_set():
            raise TransportError(f"channel {self._local}->{self._remote} is closed")
        try:
            data = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(
                f"timed out waiting for message from {self._remote}"
            ) from None
        if data is None:
            self._closed.set()
            raise TransportError(f"peer {self._remote} closed the channel")
        return decode_message(data)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # Wake the peer's receiver with an end-of-stream marker.
        self._outbox.put(None)


class InMemoryListener(Listener):
    """Listener bound to a named address on an :class:`InMemoryNetwork`."""

    def __init__(self, network: "InMemoryNetwork", address: Address) -> None:
        self._network = network
        self._address = address
        self._pending: "queue.Queue[InMemoryChannel]" = queue.Queue()
        self._closed = threading.Event()

    @property
    def address(self) -> Address:
        return self._address

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def _enqueue(self, channel: InMemoryChannel) -> None:
        if self._closed.is_set():
            raise TransportError(f"listener {self._address} is closed")
        self._pending.put(channel)

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed.is_set():
            raise TransportError(f"listener {self._address} is closed")
        try:
            return self._pending.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(f"accept timed out on {self._address}") from None

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._network._unbind(self._address)


class InMemoryNetwork(Network):
    """A process-local network with named endpoints and fault injection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._listeners: Dict[Address, InMemoryListener] = {}
        self._faults = _Faults()
        self._client_counter = 0

    # -- Network interface -------------------------------------------------

    def listen(self, address: Address) -> Listener:
        with self._lock:
            if address in self._listeners:
                raise TransportError(f"address already in use: {address}")
            listener = InMemoryListener(self, address)
            self._listeners[address] = listener
            return listener

    def connect(self, address: Address, timeout: Optional[float] = None) -> Channel:
        if self._faults.is_dead(address):
            raise TransportError(f"endpoint unreachable: {address}")
        with self._lock:
            listener = self._listeners.get(address)
            self._client_counter += 1
            client_address = f"client-{self._client_counter}"
        if listener is None or listener.closed:
            raise TransportError(f"connection refused: no listener at {address}")
        if self._faults.is_partitioned(client_address, address):
            raise TransportError(f"network partition between {client_address} and {address}")
        client_to_server: "queue.Queue[Optional[bytes]]" = queue.Queue()
        server_to_client: "queue.Queue[Optional[bytes]]" = queue.Queue()
        client_side = InMemoryChannel(
            client_address, address, server_to_client, client_to_server, self._faults
        )
        server_side = InMemoryChannel(
            address, client_address, client_to_server, server_to_client, self._faults
        )
        listener._enqueue(server_side)
        return client_side

    def registered_addresses(self) -> List[Address]:
        with self._lock:
            return sorted(addr for addr, lst in self._listeners.items() if not lst.closed)

    # -- management --------------------------------------------------------

    def _unbind(self, address: Address) -> None:
        with self._lock:
            self._listeners.pop(address, None)

    # -- fault injection ---------------------------------------------------

    def kill_endpoint(self, address: Address) -> None:
        """Make ``address`` unreachable (connect and send both fail)."""
        with self._faults.lock:
            self._faults.dead_endpoints.add(address)

    def revive_endpoint(self, address: Address) -> None:
        """Undo :meth:`kill_endpoint`."""
        with self._faults.lock:
            self._faults.dead_endpoints.discard(address)

    def partition(self, a: Address, b: Address) -> None:
        """Drop all traffic between endpoints ``a`` and ``b``."""
        with self._faults.lock:
            self._faults.partitions.add((a, b))

    def heal_partition(self, a: Address, b: Address) -> None:
        """Undo :meth:`partition`."""
        with self._faults.lock:
            self._faults.partitions.discard((a, b))
            self._faults.partitions.discard((b, a))

    def set_latency(self, seconds: float) -> None:
        """Add a fixed delay to every message send."""
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        with self._faults.lock:
            self._faults.latency_seconds = seconds

    def drop_every_nth_message(self, n: int) -> None:
        """Silently drop every n-th sent message (0 disables dropping)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._faults.lock:
            self._faults.drop_every_nth = n
            self._faults._send_counter = 0
