"""Message codec and length-prefixed framing.

All protocols in the repro (database wire protocol, Sequoia cluster
protocol, Drivolution bootstrap protocol) exchange *messages*: plain
dictionaries whose values are JSON types plus ``bytes``. Bytes values are
needed because driver packages travel as binary blobs
(``FILE_DATA(binary_code)`` in the paper's Table 3).

The codec encodes a message to a compact ``bytes`` representation and
back. Bytes values are tagged and base64 encoded so the envelope itself
remains JSON; a short magic prefix guards against framing bugs.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Dict

from repro.errors import TransportError

_MAGIC = b"RPRO"
_BYTES_TAG = "__bytes_b64__"


class MessageCodecError(TransportError):
    """A message could not be encoded or decoded."""


def _encode_value(value: Any) -> Any:
    """Recursively convert a message value into a JSON-compatible value."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise MessageCodecError(f"unsupported message value type: {type(value)!r}")


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            return base64.b64decode(value[_BYTES_TAG])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize a message dictionary to bytes.

    Raises :class:`MessageCodecError` if the message is not a dict or
    contains values that cannot be represented.
    """
    if not isinstance(message, dict):
        raise MessageCodecError(f"message must be a dict, got {type(message)!r}")
    try:
        payload = json.dumps(_encode_value(message), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise MessageCodecError(f"cannot encode message: {exc}") from exc
    return _MAGIC + payload.encode("utf-8")


def decode_message(data: bytes) -> Dict[str, Any]:
    """Deserialize bytes produced by :func:`encode_message`."""
    if not isinstance(data, (bytes, bytearray)):
        raise MessageCodecError(f"expected bytes, got {type(data)!r}")
    if not data.startswith(_MAGIC):
        raise MessageCodecError("bad magic prefix (corrupted or foreign frame)")
    try:
        decoded = json.loads(data[len(_MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageCodecError(f"cannot decode message: {exc}") from exc
    if not isinstance(decoded, dict):
        raise MessageCodecError("decoded message is not a dict")
    return _decode_value(decoded)


def frame(data: bytes) -> bytes:
    """Prefix ``data`` with its 4-byte big-endian length."""
    if len(data) > 0xFFFFFFFF:
        raise MessageCodecError("frame too large")
    return struct.pack(">I", len(data)) + data


def read_frame(read_exactly) -> bytes:
    """Read one length-prefixed frame using ``read_exactly(n) -> bytes``.

    ``read_exactly`` must either return exactly ``n`` bytes or raise; an
    empty return signals a closed peer and raises :class:`TransportError`.
    """
    header = read_exactly(4)
    if not header or len(header) < 4:
        raise TransportError("connection closed while reading frame header")
    (length,) = struct.unpack(">I", header)
    body = read_exactly(length)
    if body is None or len(body) < length:
        raise TransportError("connection closed while reading frame body")
    return body
