"""Real TCP transport over localhost.

Provides the same :class:`~repro.netsim.transport.Network` interface as the
in-memory network but backed by actual sockets, so integration tests can
demonstrate that every protocol in the repro (database wire protocol,
cluster protocol, Drivolution bootstrap protocol) works over a real
network stack, not only the simulated one.

Addresses are ``"host:port"``; ``"host:0"`` binds an ephemeral port and
the listener's :attr:`address` reports the actual port chosen.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Optional

from repro.errors import TransportError
from repro.netsim.framing import decode_message, encode_message, frame, read_frame
from repro.netsim.transport import Address, Channel, Listener, Network


def _parse_address(address: Address) -> tuple:
    host, _, port = address.rpartition(":")
    if not host or not port:
        raise TransportError(f"invalid TCP address (expected host:port): {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise TransportError(f"invalid TCP port in address {address!r}") from exc


class TcpChannel(Channel):
    """Message channel over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining > 0:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise TransportError("timed out waiting for message") from None
            except OSError as exc:
                raise TransportError(f"socket error: {exc}") from exc
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send(self, message: Dict[str, Any]) -> None:
        if self._closed:
            raise TransportError("channel is closed")
        data = frame(encode_message(message))
        with self._send_lock:
            try:
                self._sock.sendall(data)
            except OSError as exc:
                self._closed = True
                raise TransportError(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("channel is closed")
        with self._recv_lock:
            self._sock.settimeout(timeout)
            try:
                body = read_frame(self._read_exactly)
            except TransportError:
                self._closed = True
                raise
        return decode_message(body)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class TcpListener(Listener):
    """Listener bound to a TCP socket."""

    def __init__(self, address: Address) -> None:
        host, port = _parse_address(address)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            raise TransportError(f"cannot bind {address}: {exc}") from exc
        self._sock.listen(64)
        actual_host, actual_port = self._sock.getsockname()[:2]
        self._address = f"{actual_host}:{actual_port}"
        self._closed = False

    @property
    def address(self) -> Address:
        return self._address

    @property
    def closed(self) -> bool:
        return self._closed

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed:
            raise TransportError(f"listener {self._address} is closed")
        self._sock.settimeout(timeout)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            raise TransportError(f"accept timed out on {self._address}") from None
        except OSError as exc:
            raise TransportError(f"accept failed on {self._address}: {exc}") from exc
        return TcpChannel(conn)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sock.close()


class TcpNetwork(Network):
    """TCP-backed network. Addresses are ``host:port`` strings."""

    def listen(self, address: Address) -> Listener:
        return TcpListener(address)

    def connect(self, address: Address, timeout: Optional[float] = None) -> Channel:
        host, port = _parse_address(address)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout if timeout is not None else 5.0)
        try:
            sock.connect((host, port))
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot connect to {address}: {exc}") from exc
        sock.settimeout(None)
        return TcpChannel(sock)
