"""Network substrate used by every distributed component in the repro.

The paper's system spans client applications, database servers, Sequoia
controllers and Drivolution servers that all talk over a network. This
package provides that network twice:

- :class:`repro.netsim.inmem.InMemoryNetwork` — a deterministic in-process
  network with named endpoints, connection brokering, broadcast domains
  (used by ``DRIVOLUTION_DISCOVER``) and fault injection. This is the
  default substrate for tests and experiments.
- :class:`repro.netsim.tcp.TcpNetwork` — a real TCP/localhost transport
  with the same interface, used by integration tests to show the system
  also works over actual sockets.

Both produce message-oriented :class:`repro.netsim.transport.Channel`
objects carrying JSON-compatible dictionaries (bytes payloads are
supported transparently by the framing codec). A simulated secure channel
(:mod:`repro.netsim.secure`) adds certificate verification and tamper
detection on top of any plain channel.
"""

from repro.netsim.transport import Channel, Listener, Network, Address
from repro.netsim.inmem import InMemoryNetwork
from repro.netsim.tcp import TcpNetwork
from repro.netsim.framing import encode_message, decode_message, MessageCodecError
from repro.netsim.secure import (
    Certificate,
    CertificateAuthority,
    SecureChannel,
    SecureChannelError,
    secure_wrap,
)

__all__ = [
    "Address",
    "Channel",
    "Listener",
    "Network",
    "InMemoryNetwork",
    "TcpNetwork",
    "encode_message",
    "decode_message",
    "MessageCodecError",
    "Certificate",
    "CertificateAuthority",
    "SecureChannel",
    "SecureChannelError",
    "secure_wrap",
]
