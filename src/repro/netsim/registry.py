"""Process-global network registry.

Dynamically loaded driver packages (see :mod:`repro.core.loader`) receive a
connection URL and options from the application, exactly as the paper
describes for JDBC drivers. When the application does not pass an explicit
``network=`` option, drivers resolve the transport by name through this
registry: experiments register their :class:`InMemoryNetwork` under a name
(``"default"`` unless stated otherwise) and every driver loaded afterwards
finds it here.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import TransportError
from repro.netsim.tcp import TcpNetwork
from repro.netsim.transport import Network

DEFAULT_NETWORK_NAME = "default"

_lock = threading.Lock()
_networks: Dict[str, Network] = {}


def register_network(name: str, network: Network) -> None:
    """Register ``network`` under ``name`` (replacing any previous one)."""
    with _lock:
        _networks[name] = network


def unregister_network(name: str) -> None:
    """Remove a registered network; missing names are ignored."""
    with _lock:
        _networks.pop(name, None)


def get_network(name: str = DEFAULT_NETWORK_NAME) -> Network:
    """Look up a registered network by name.

    The special name ``"tcp"`` always resolves to a :class:`TcpNetwork`
    even when nothing was registered, so TCP URLs work out of the box.
    """
    with _lock:
        network = _networks.get(name)
    if network is not None:
        return network
    if name == "tcp":
        return TcpNetwork()
    raise TransportError(
        f"no network registered under {name!r}; call register_network() first"
    )


def clear_registry() -> None:
    """Remove all registered networks (used by test teardown)."""
    with _lock:
        _networks.clear()
