#!/usr/bin/env python
"""Master/slave failover via pre-configured drivers (paper Figure 4, Section 5.2).

Two databases hold the same application data. The Drivolution server stores
two pre-configured drivers — DBmaster and DBslave — that each always connect
to their own database, whatever host the application URL names. Failing the
whole client fleet over to the slave is a single administrative operation.

Run with ``python examples/failover_master_slave.py``.
"""

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, StandaloneServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine


def main() -> None:
    clock = SimulatedClock()
    network = InMemoryNetwork()

    # Master and slave databases with the same schema.
    servers = []
    for name in ("dbmaster", "dbslave"):
        engine = Engine(name=name, clock=clock)
        engine.create_database("appdb")
        engine.open_session("appdb").execute(
            "CREATE TABLE orders (id INTEGER NOT NULL PRIMARY KEY, item VARCHAR)"
        )
        servers.append(DatabaseServer(engine, network, f"{name}:5432", ServerConfig(name=name)).start())
        if name == "dbmaster":
            master_engine = engine
        else:
            slave_engine = engine

    # Standalone Drivolution server holding the two pre-configured drivers.
    drivolution = DrivolutionServer(
        StandaloneServerBinding(clock=clock),
        network=network,
        address="drivolution:8000",
        clock=clock,
    ).start()
    admin = DrivolutionAdmin([drivolution])
    master_driver = build_pydb_driver(
        "dbmaster-driver", preconfigured_url="pydb://dbmaster:5432/appdb"
    )
    slave_driver = build_pydb_driver(
        "dbslave-driver", preconfigured_url="pydb://dbslave:5432/appdb"
    )
    master_record = admin.install_driver(master_driver, database="appdb", lease_time_ms=2_000)

    # Three client applications; their URL only names the Drivolution server.
    bootloaders = [Bootloader(BootloaderConfig(), network=network, clock=clock) for _ in range(3)]
    for index, bootloader in enumerate(bootloaders):
        connection = bootloader.connect("drivolution://drivolution:8000/appdb")
        cursor = connection.cursor()
        cursor.execute(
            "INSERT INTO orders (id, item) VALUES ($id, 'pre-failover')", {"id": index + 1}
        )
        connection.close()
    print("drivers in use:", [b.driver_info()["driver_name"] for b in bootloaders])
    print("rows on master:", master_engine.open_session("appdb").execute("SELECT COUNT(*) FROM orders").scalar())

    # Maintenance time: redirect every client to the slave with ONE operation.
    admin.push_upgrade(slave_driver, old_record=master_record, database="appdb", lease_time_ms=2_000)
    clock.advance(3.0)
    for bootloader in bootloaders:
        print("client outcome:", bootloader.check_for_update())

    for index, bootloader in enumerate(bootloaders):
        connection = bootloader.connect("drivolution://drivolution:8000/appdb")
        cursor = connection.cursor()
        cursor.execute(
            "INSERT INTO orders (id, item) VALUES ($id, 'post-failover')", {"id": 100 + index}
        )
        connection.close()
    print("drivers in use now:", [b.driver_info()["driver_name"] for b in bootloaders])
    print("rows on slave:", slave_engine.open_session("appdb").execute("SELECT COUNT(*) FROM orders").scalar())

    for bootloader in bootloaders:
        bootloader.shutdown()
    drivolution.stop()
    for server in servers:
        server.stop()


if __name__ == "__main__":
    main()
