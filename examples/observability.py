#!/usr/bin/env python
"""Observability: trace a mixed workload and read the slow-query table.

This example turns on per-statement tracing
(``ControllerConfig.tracing``), runs a mixed read/write workload through
the sequoia driver — including a writer burst that exercises the write
batcher — and then shows the three outputs the observability subsystem
produces:

1. the driver-side view of one statement (its span tree, returned on the
   RESULT frame because the connection negotiated tracing),
2. the controller's slow-query table with per-stage breakdowns and
   redacted SQL,
3. the unified metrics registry, exported as Prometheus text.

Run with ``PYTHONPATH=src python examples/observability.py``.
"""

import threading

from repro.cluster.driver import ClusterDriverRuntime
from repro.experiments.environments import build_cluster
from repro.obs import Trace


def main() -> None:
    # --- a two-replica cluster with tracing on ---------------------------------
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"tracing": True, "slow_query_capacity": 10},
    )
    controller = env.controllers[0]
    runtime = ClusterDriverRuntime(name="obs-example")

    connection = runtime.connect(env.client_url(), network=env.network, trace="true")
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE orders (id INT PRIMARY KEY, item TEXT)")

    # --- mixed workload: interleaved reads and writes, then a writer burst -----
    for index in range(12):
        cursor.execute(f"INSERT INTO orders VALUES ({index}, 'item-{index}')")
        if index % 3 == 0:
            cursor.execute("SELECT * FROM orders")

    def writer(offset: int) -> None:
        burst = runtime.connect(env.client_url(), network=env.network, trace="true")
        burst_cursor = burst.cursor()
        for index in range(5):
            burst_cursor.execute(
                f"INSERT INTO orders VALUES ({offset + index}, 'burst-{offset}')"
            )
        burst.close()

    threads = [threading.Thread(target=writer, args=(100 + 10 * n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # --- 1. the driver's view of its last statement ------------------------------
    cursor.execute("SELECT * FROM orders")
    trace = connection.last_trace
    print("last statement trace", trace["trace_id"])
    print(f"  driver-observed latency: {trace['latency_s'] * 1000:.3f} ms")
    for span in Trace.spans_from_wire(trace["spans"]):
        indent = "    " if span.parent else "  "
        print(f"{indent}{span.name:<12} {span.duration * 1000:8.3f} ms  {span.attrs}")

    # --- 2. the slow-query table -------------------------------------------------
    print("\nslowest statements (redacted SQL, per-stage ms):")
    print(f"{'ms':>9}  {'stages':<52}  sql")
    for entry in controller.slow_queries.entries()[:5]:
        stages = " ".join(f"{name}={ms:.2f}" for name, ms in entry["stages_ms"].items())
        print(f"{entry['duration_ms']:>9.3f}  {stages:<52}  {entry['sql']}")

    # --- 3. the unified registry, Prometheus-shaped ------------------------------
    text = controller.metrics_text()
    interesting = [
        line
        for line in text.splitlines()
        if not line.startswith("#")
        and any(
            key in line
            for key in (
                "traced_statements",
                "statement_latency_seconds_p",
                "slow_queries_captured",
                "scheduler_statements",
            )
        )
    ]
    print("\nselected Prometheus samples:")
    for line in interesting:
        print(" ", line)

    obs = controller.stats()["obs"]
    assert obs["traced_statements"] > 0
    assert controller.slow_queries.entries(), "workload must populate the slow log"

    connection.close()
    env.close()
    print("\nobservability example done.")


if __name__ == "__main__":
    main()
