#!/usr/bin/env python
"""Controller HA failover walkthrough (docs/ha.md).

Builds a three-controller cluster whose recovery logs form a replicated
HA group, streams writes through the primary, crashes it mid-stream
(endpoint dies first, no final flush — the worst-case window), and
shows the next write healing the cluster: the driver fails over, the
bounced follower elects itself by the (last_index, node_id) rule at a
fresh epoch, and every committed row is still there — zero lost writes.

Run with ``python examples/controller_failover.py``.
"""

from repro.cluster.driver import ClusterDriverRuntime
from repro.experiments.environments import build_cluster


def ha_line(controller):
    ha = controller.stats()["ha"]
    return (
        f"  {controller.config.controller_id}: role={ha['role']} "
        f"epoch={ha['epoch']} last_index={controller.ha_store.last_index} "
        f"rounds={ha['rounds']}"
    )


def main() -> None:
    env = build_cluster(replicas=2, controllers=3, ha=True)
    try:
        connection = ClusterDriverRuntime(name="ha-demo").connect(
            env.client_url(), network=env.network
        )
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY)")
        for row in range(1, 6):
            cursor.execute(f"INSERT INTO accounts (id) VALUES ({row})")

        primary = next(c for c in env.controllers if c.ha_store.is_primary)
        print("before the crash (one replication round per commit group):")
        for controller in env.controllers:
            print(ha_line(controller))

        # Crash the primary: endpoint first (nothing escapes, not even a
        # final replication round), then the process state.
        env.network.kill_endpoint(primary.address)
        primary.stop(flush=False)
        print(f"\ncrashed {primary.config.controller_id}")

        # The next write discovers the death: the driver fails over to a
        # follower, whose not_primary path runs the election inline.
        for row in range(6, 11):
            cursor.execute(f"INSERT INTO accounts (id) VALUES ({row})")
        cursor.execute("SELECT COUNT(*) FROM accounts")
        count = cursor.fetchone()[0]

        survivors = [c for c in env.controllers if c is not primary]
        new_primary = next(c for c in survivors if c.ha_store.is_primary)
        print(
            f"promoted {new_primary.config.controller_id} at epoch "
            f"{new_primary.ha_store.epoch}; driver failovers="
            f"{connection.failovers} not_primary_bounces="
            f"{connection.not_primary_bounces}"
        )
        for controller in survivors:
            print(ha_line(controller))

        print(f"\nrows committed across the crash: {count} (expected 10)")
        heads = {c.ha_store.last_index for c in survivors}
        assert count == 10, "lost a committed write!"
        assert len(heads) == 1, "survivor logs diverged!"
        print("zero lost writes; surviving logs converged")
        connection.close()
    finally:
        env.close()


if __name__ == "__main__":
    main()
