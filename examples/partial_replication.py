#!/usr/bin/env python
"""Partial replication (RAIDb-2) surviving a backend failure.

Builds a 3-backend cluster with a ``hash:2`` placement — every table
lives on exactly two of the three backends — runs traffic over a handful
of tables, then kills one backend and shows that:

- tables the dead backend does **not** host are completely unaffected,
- tables it does host keep serving reads and writes from their surviving
  replica,
- when the backend is re-enabled, it is cold-started from a *table-subset*
  dump (only the tables it hosts) plus a placement-filtered replay of the
  recovery log, and every replica converges.

Run with ``python examples/partial_replication.py``.
"""

from repro.experiments.environments import build_cluster
from repro.experiments.partial_replication import cluster_checksums

TABLES = [f"shard_t{i}" for i in range(6)]


def main() -> None:
    env = build_cluster(replicas=3, controllers=1, controller_options={"placement": "hash:2"})
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        for table in TABLES:
            scheduler.execute(f"CREATE TABLE {table} (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
            scheduler.execute(f"INSERT INTO {table} (id, v) VALUES (1, 0)")

        placement = controller.placement
        print("placement mode:", placement.stats()["mode"])
        for table in TABLES:
            print(f"  {table} -> {sorted(placement.hosts(table))}")

        victim = "db3"
        hosted = sorted(placement.tables_hosted_by(victim))
        print(f"\nkilling {victim} (hosts {hosted})")
        controller.disable_backend(victim)

        served = failed = 0
        for round_index in range(5):
            for table in TABLES:
                try:
                    scheduler.execute(f"UPDATE {table} SET v = $v WHERE id = 1", {"v": round_index})
                    scheduler.execute(f"SELECT * FROM {table}")
                    served += 2
                except Exception:  # noqa: BLE001 - demo accounting
                    failed += 1
        print(f"while {victim} was down: {served} statements served, {failed} failed")
        print("(every table kept its surviving replica — nothing was lost)")

        # Compact the log past the victim's checkpoint so recovery must
        # take the interesting path: a table-subset dump assembled from
        # the hosting peers (without this, a plain filtered replay of the
        # missed entries would suffice).
        controller.recovery_log.release_checkpoint(f"backend:{victim}")
        compacted = controller.compact_recovery_log()
        replayed = controller.enable_backend(victim)
        print(f"\n{victim} re-enabled after {compacted} log entries were compacted away: "
              f"cold-started from a table-subset dump of its hosted tables "
              f"({controller.scheduler.cold_starts} cold start, {replayed} entries replayed)")
        checksums = cluster_checksums(env)
        converged = all(len(set(copies.values())) == 1 for copies in checksums.values())
        print("replicas converged:", converged)
        print(f"{victim} now holds exactly:", sorted(
            table for table, copies in checksums.items() if victim in copies
        ))
    finally:
        env.close()


if __name__ == "__main__":
    main()
