#!/usr/bin/env python
"""Quickstart: store a driver in the database, bootstrap a client, upgrade it.

This walks the core Drivolution flow end to end on the in-memory substrate:

1. start a database server with an in-database Drivolution server,
2. install a driver package with a single administrative operation,
3. let a client application's bootloader download and load the driver,
4. push a new driver version and watch the client upgrade transparently.

Run with ``python examples/quickstart.py``.
"""

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, InDatabaseServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine


def main() -> None:
    # --- infrastructure: one database, its server, its Drivolution server -----
    clock = SimulatedClock()
    network = InMemoryNetwork()
    engine = Engine(name="db1", clock=clock)
    engine.create_database("appdb")
    db_server = DatabaseServer(engine, network, "db1:5432", ServerConfig(name="db1")).start()

    binding = InDatabaseServerBinding(engine, "appdb", clock=clock)
    drivolution = DrivolutionServer(binding, network=network, clock=clock, server_id="drivo-db1")
    drivolution.attach_to_database_server(db_server)
    admin = DrivolutionAdmin([drivolution])

    # --- DBA: install the driver (one INSERT on the Drivolution server) --------
    record_v1 = admin.install_driver(
        build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
        database="appdb",
        lease_time_ms=5_000,
    )
    print("installed drivers:", admin.installed_drivers())

    # --- client application: only the generic bootloader is installed ----------
    bootloader = Bootloader(BootloaderConfig(), network=network, clock=clock)
    connection = bootloader.connect("pydb://db1:5432/appdb")
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE greetings (id INTEGER PRIMARY KEY, message VARCHAR)")
    cursor.execute("INSERT INTO greetings (id, message) VALUES (1, 'hello drivolution')")
    cursor.execute("SELECT message FROM greetings WHERE id = 1")
    print("query result:", cursor.fetchone())
    print("driver in use:", bootloader.driver_info()["driver_name"])

    # --- DBA: push an upgrade; the client picks it up at its next lease check --
    admin.push_upgrade(
        build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
        old_record=record_v1,
        database="appdb",
        lease_time_ms=5_000,
    )
    clock.advance(6.0)  # let the lease expire
    outcome = bootloader.check_for_update()
    print("lease check outcome:", outcome)
    print("driver in use now:", bootloader.driver_info()["driver_name"])

    new_connection = bootloader.connect("pydb://db1:5432/appdb")
    cursor = new_connection.cursor()
    cursor.execute("SELECT COUNT(*) FROM greetings")
    print("data still there through the new driver:", cursor.fetchone())

    new_connection.close()
    bootloader.shutdown()
    db_server.stop()


if __name__ == "__main__":
    main()
