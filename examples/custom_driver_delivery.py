#!/usr/bin/env python
"""Customized driver delivery and license management (paper Section 5.4).

Part 1 assembles drivers on demand: a GIS application, a French-localised
application and a Kerberos-secured application each receive only the
extensions they asked for, and the delivered sizes are compared with the
monolithic everything-bundled driver.

Part 2 uses the license server: a small pool of per-user licenses is leased
to clients, reclaimed when a client crashes, and handed to waiting clients.

Run with ``python examples/custom_driver_delivery.py``.
"""

from repro.core import DriverLoader
from repro.core.clock import SimulatedClock
from repro.core.license_server import LicenseError, LicensePolicy, LicenseServer
from repro.dbapi.driver_factory import pydb_assembler


def assembled_drivers() -> None:
    print("=== on-demand driver assembly ===")
    assembler = pydb_assembler(payload_size=4096)
    monolithic = assembler.assemble_monolithic()
    loader = DriverLoader()
    for client, extensions in (
        ("gis-app", ["gis"]),
        ("french-app", ["nls-fr"]),
        ("kerberos-app", ["kerberos"]),
        ("plain-app", []),
    ):
        package = assembler.assemble(extensions=extensions)
        loaded = loader.load(package)
        print(
            f"{client:<14} extensions={extensions or ['-']} "
            f"delivered={package.size_bytes:>6} bytes "
            f"(monolithic would be {monolithic.size_bytes} bytes), "
            f"features={sorted(loaded.module.FEATURES) or ['none']}"
        )
    gis_driver = loader.load(assembler.assemble(extensions=["gis"]))
    point = gis_driver.module.FEATURES["gis"]("POINT(6.6 46.5)")
    print("GIS feature works:", point)


def license_management() -> None:
    print("\n=== Drivolution as a license server ===")
    clock = SimulatedClock()
    server = LicenseServer(
        ["LIC-001", "LIC-002"], policy=LicensePolicy.DYNAMIC, lease_time_ms=2_000, clock=clock
    )
    print("app-1 gets", server.acquire("app-1").license_key)
    print("app-2 gets", server.acquire("app-2").license_key)
    try:
        server.acquire("app-3")
    except LicenseError as exc:
        print("app-3 denied:", exc)
    print("app-1 crashes without releasing; advancing past its lease...")
    clock.advance(3.0)
    print("reclaimed licenses:", server.reclaim_expired())
    print("app-3 retries and gets", server.acquire("app-3").license_key)


def main() -> None:
    assembled_drivers()
    license_management()


if __name__ == "__main__":
    main()
