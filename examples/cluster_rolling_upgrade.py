#!/usr/bin/env python
"""Rolling driver upgrade on a replicated cluster (paper Figures 5/6, Section 5.3).

Builds a two-controller, two-replica Sequoia-like cluster with a Drivolution
server embedded (and replicated) in each controller, keeps application
traffic flowing, installs a new cluster driver on one controller, and shows
that every client upgrades with zero failed requests and zero client-side
operations — even while one controller is restarted.

Run with ``python examples/cluster_rolling_upgrade.py``.
"""

from repro.core import Bootloader, BootloaderConfig
from repro.dbapi.driver_factory import build_sequoia_driver
from repro.experiments.environments import build_cluster
from repro.workloads import ClientApplication, WorkloadSpec


def main() -> None:
    env = build_cluster(replicas=2, controllers=2, embedded_drivolution=True)
    try:
        virtual_database = env.controllers[0].config.virtual_database
        env.controllers[0].install_driver_cluster_wide(
            build_sequoia_driver("sequoia-driver-1.0", driver_version=(1, 0, 0)),
            database=virtual_database,
            lease_time_ms=2_000,
        )

        # Client fleet with continuous traffic.
        bootloaders = [
            Bootloader(BootloaderConfig(api_name="SEQUOIA"), network=env.network, clock=env.clock)
            for _ in range(3)
        ]
        apps = [
            ClientApplication(
                f"client{i + 1}",
                bootloader.connect,
                env.client_url(),
                spec=WorkloadSpec(table="orders", write_ratio=0.5),
                clock=env.clock,
            )
            for i, bootloader in enumerate(bootloaders)
        ]
        apps[0].ensure_schema()
        for app in apps:
            app.run_requests(10)
        print("drivers:", sorted({b.driver_info()["driver_name"] for b in bootloaders}))

        # Push the new Sequoia driver from controller 2 (replication spreads it).
        env.controllers[1].install_driver_cluster_wide(
            build_sequoia_driver("sequoia-driver-2.0", driver_version=(2, 0, 0)),
            database=virtual_database,
            lease_time_ms=2_000,
        )
        # Rolling restart of controller 1 while traffic continues.
        env.controllers[0].stop()
        env.network.kill_endpoint(env.controllers[0].address)
        for app in apps:
            app.drop_connection()
            app.run_requests(10)
        env.network.revive_endpoint(env.controllers[0].address)
        env.controllers[0].start()

        env.clock.advance(3.0)
        outcomes = [bootloader.check_for_update() for bootloader in bootloaders]
        for app in apps:
            app.drop_connection()
            app.run_requests(10)

        print("upgrade outcomes:", outcomes)
        print("drivers now:", sorted({b.driver_info()["driver_name"] for b in bootloaders}))
        failed = sum(app.metrics.summary().failed for app in apps)
        print("failed requests across the whole upgrade:", failed)
        counts = [
            engine.open_session(env.database_name).execute("SELECT COUNT(*) FROM orders").scalar()
            for engine in env.replica_engines
        ]
        print("rows per replica (should match):", counts)
        for app in apps:
            app.close()
    finally:
        env.close()


if __name__ == "__main__":
    main()
