#!/usr/bin/env python
"""Dump a traced controller's unified metrics.

Builds the in-memory demo cluster with tracing on, drives a small mixed
workload through the sequoia driver, and prints the controller's
observability output in one of three shapes:

- ``--format prom`` (default): Prometheus text exposition, the same
  bytes ``Controller.metrics_text()`` serves. CI validates this output
  round-trips through the strict parser in ``repro.obs``.
- ``--format json``: the registry snapshot as stable-key-order JSON.
- ``--format slow``: the slow-query table with per-stage breakdowns.

Usage::

    PYTHONPATH=src python tools/obs_dump.py [--format prom|json|slow]
                                            [--statements N]
"""

from __future__ import annotations

import argparse
import sys


def run_workload(statements: int):
    """A small mixed read/write workload on a traced two-replica cluster;
    returns the (still running) environment and its controller."""
    from repro.experiments.environments import build_cluster
    from repro.cluster.driver import ClusterDriverRuntime

    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"tracing": True, "slow_query_capacity": 16},
    )
    runtime = ClusterDriverRuntime(name="obs-dump")
    connection = runtime.connect(env.client_url(), network=env.network, trace="true")
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE events (id INT PRIMARY KEY, kind TEXT)")
    for index in range(statements):
        if index % 3 == 2:
            cursor.execute("SELECT * FROM events")
        else:
            cursor.execute(f"INSERT INTO events VALUES ({index}, 'kind-{index % 4}')")
    connection.close()
    return env, env.controllers[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--format", choices=("prom", "json", "slow"), default="prom", dest="fmt"
    )
    parser.add_argument("--statements", type=int, default=30)
    args = parser.parse_args(argv)

    env, controller = run_workload(max(1, args.statements))
    try:
        if args.fmt == "prom":
            print(controller.metrics_text(), end="")
        elif args.fmt == "json":
            print(controller.metrics_json())
        else:
            entries = controller.slow_queries.entries()
            print(f"{'ms':>9}  {'trace':<12}  {'stages':<40}  sql")
            for entry in entries:
                stages = " ".join(
                    f"{name}={ms:.2f}" for name, ms in entry["stages_ms"].items()
                )
                # Keep the *tail*: client trace ids share a per-connection
                # prefix and differ in the trailing sequence number.
                trace_id = (entry.get("trace_id") or "-")[-12:]
                print(f"{entry['duration_ms']:>9.3f}  {trace_id:<12}  {stages:<40}  {entry['sql']}")
    finally:
        env.close()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `obs_dump.py | head`
        sys.exit(0)
