#!/usr/bin/env python
"""Check that every relative markdown link in the docs resolves.

Usage: python tools/check_doc_links.py [file-or-dir ...]

Defaults to README.md + docs/. Scans markdown files for inline links
and images (``[text](target)``), skips absolute URLs
(http/https/mailto) and pure in-page anchors (``#fragment``), resolves
each remaining target relative to the file that contains it (dropping
any ``#fragment``), and fails with a per-link report when a target does
not exist. Run by the CI docs job so documentation links cannot rot.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

#: Inline markdown links/images: [text](target) / ![alt](target).
#: Targets with spaces or nested parens are not used in this repo.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".md"):
                    files.append(os.path.join(path, name))
        elif path.endswith(".md"):
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {path!r}")
    return files


def check_file(path: str) -> List[Tuple[int, str, str]]:
    """Broken links in one file as (line_number, target, resolved_path)."""
    broken: List[Tuple[int, str, str]] = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_SKIP_PREFIXES):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = os.path.normpath(os.path.join(base, relative))
                if not os.path.exists(resolved):
                    broken.append((line_number, target, resolved))
    return broken


def main(argv: List[str]) -> int:
    paths = argv or ["README.md", "docs"]
    files = iter_markdown_files(paths)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    checked_links = 0
    failures = 0
    for path in files:
        broken = check_file(path)
        with open(path, "r", encoding="utf-8") as handle:
            checked_links += sum(
                1
                for line in handle
                for match in _LINK.finditer(line)
                if not match.group(1).startswith(_SKIP_PREFIXES)
            )
        for line_number, target, resolved in broken:
            failures += 1
            print(f"{path}:{line_number}: broken link {target!r} -> {resolved}")
    print(f"checked {len(files)} files, {checked_links} relative links, {failures} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
